package sweep

import (
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"pdr/internal/geom"
)

// densityAt counts objects in the half-open-dual l-square neighborhood of p.
func densityAt(points []geom.Point, p geom.Point, l float64) int {
	n := 0
	for _, q := range points {
		if q.X > p.X-l/2 && q.X <= p.X+l/2 && q.Y > p.Y-l/2 && q.Y <= p.Y+l/2 {
			n++
		}
	}
	return n
}

// naiveDense computes the exact dense region inside cell by coordinate
// compression: every rectangle of the arrangement induced by the event
// coordinates has constant density, tested at its center. Independent oracle
// for DenseRects.
func naiveDense(points []geom.Point, cell geom.Rect, rho, l float64) geom.Region {
	threshold := int(math.Ceil(rho * l * l))
	xs := []float64{cell.MinX, cell.MaxX}
	ys := []float64{cell.MinY, cell.MaxY}
	for _, p := range points {
		for _, v := range []float64{p.X - l/2, p.X + l/2} {
			if v > cell.MinX && v < cell.MaxX {
				xs = append(xs, v)
			}
		}
		for _, v := range []float64{p.Y - l/2, p.Y + l/2} {
			if v > cell.MinY && v < cell.MaxY {
				ys = append(ys, v)
			}
		}
	}
	sort.Float64s(xs)
	sort.Float64s(ys)
	var out geom.Region
	for i := 0; i+1 < len(xs); i++ {
		if xs[i] == xs[i+1] {
			continue
		}
		for j := 0; j+1 < len(ys); j++ {
			if ys[j] == ys[j+1] {
				continue
			}
			// Density is constant on [xs[i], xs[i+1]) x [ys[j], ys[j+1]).
			// Test at the center: corners sit exactly on neighborhood
			// boundaries where (q+l/2)-l/2 round-off flips the strict
			// comparisons; centers are numerically robust.
			c := geom.Point{X: (xs[i] + xs[i+1]) / 2, Y: (ys[j] + ys[j+1]) / 2}
			if densityAt(points, c, l) >= threshold {
				out.Add(geom.Rect{MinX: xs[i], MinY: ys[j], MaxX: xs[i+1], MaxY: ys[j+1]})
			}
		}
	}
	return out
}

func regionsEqual(t *testing.T, got, want geom.Region, label string) {
	t.Helper()
	ga, wa := got.Area(), want.Area()
	if math.Abs(ga-wa) > 1e-6*(1+wa) {
		t.Fatalf("%s: area %g, want %g", label, ga, wa)
	}
	if d := got.DifferenceArea(want); d > 1e-6 {
		t.Fatalf("%s: got \\ want has area %g", label, d)
	}
	if d := want.DifferenceArea(got); d > 1e-6 {
		t.Fatalf("%s: want \\ got has area %g", label, d)
	}
}

func TestPaperExampleSingleCluster(t *testing.T) {
	// Four objects in a tight cluster; rho*l^2 = 4 with l=2 requires all
	// four inside one l-square.
	points := []geom.Point{{X: 5, Y: 5}, {X: 5.5, Y: 5}, {X: 5, Y: 5.5}, {X: 5.5, Y: 5.5}}
	cell := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	got := DenseRects(points, cell, 1, 2)
	if len(got) == 0 {
		t.Fatal("expected a dense region")
	}
	// Centers p whose l-square holds all four: p in [4.5, 6) x [4.5, 6).
	want := geom.Region{{MinX: 4.5, MinY: 4.5, MaxX: 6, MaxY: 6}}
	regionsEqual(t, got, want, "cluster")
}

func TestThresholdTooHigh(t *testing.T) {
	points := []geom.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}
	cell := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	if got := DenseRects(points, cell, 5, 1); len(got) != 0 {
		t.Fatalf("expected empty region, got %v", got)
	}
}

func TestZeroThresholdEverythingDense(t *testing.T) {
	cell := geom.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4}
	got := DenseRects(nil, cell, 0, 2)
	regionsEqual(t, got, geom.Region{cell}, "rho=0")
}

func TestEmptyCell(t *testing.T) {
	if got := DenseRects([]geom.Point{{X: 1, Y: 1}}, geom.Rect{}, 1, 2); got != nil {
		t.Fatalf("empty cell: got %v", got)
	}
	if got := DenseRects([]geom.Point{{X: 1, Y: 1}}, geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 1, 0); got != nil {
		t.Fatalf("l=0: got %v", got)
	}
}

func TestSingleObject(t *testing.T) {
	// One object, threshold 1: dense region is the influence square of the
	// object clipped to the cell.
	points := []geom.Point{{X: 5, Y: 5}}
	cell := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	got := DenseRects(points, cell, 1.0/4.0, 2) // rho*l^2 = 1
	want := geom.Region{{MinX: 4, MinY: 4, MaxX: 6, MaxY: 6}}
	regionsEqual(t, got, want, "single object")
}

func TestObjectOutsideInfluences(t *testing.T) {
	// Object just outside the cell still influences points near the edge.
	points := []geom.Point{{X: -0.5, Y: 5}}
	cell := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	got := DenseRects(points, cell, 1.0/4.0, 2)
	want := geom.Region{{MinX: 0, MinY: 4, MaxX: 0.5, MaxY: 6}}
	regionsEqual(t, got, want, "edge influence")
}

func TestHalfOpenBoundaryExactness(t *testing.T) {
	// Object at q: centers p with p.x in [q.x-l/2, q.x+l/2) are influenced.
	// With q.x = 5, l = 2: p.x in [4, 6). Verify the emitted region is
	// exactly half-open at both ends.
	points := []geom.Point{{X: 5, Y: 5}}
	cell := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	got := DenseRects(points, cell, 0.25, 2)
	if !got.Contains(geom.Point{X: 4, Y: 4}) {
		t.Error("left-closed boundary point (4,4) must be dense")
	}
	if got.Contains(geom.Point{X: 6, Y: 5}) {
		t.Error("right-open boundary point (6,5) must not be dense")
	}
	if got.Contains(geom.Point{X: 5, Y: 6}) {
		t.Error("top-open boundary point (5,6) must not be dense")
	}
}

func TestMatchesNaiveOracleRandom(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		cell := geom.Rect{MinX: 20, MinY: 20, MaxX: 60, MaxY: 60}
		l := 4 + rng.Float64()*10
		points := make([]geom.Point, n)
		for i := range points {
			// Place points around the cell, including its grown margin.
			points[i] = geom.Point{
				X: cell.MinX - l + rng.Float64()*(cell.Width()+2*l),
				Y: cell.MinY - l + rng.Float64()*(cell.Height()+2*l),
			}
		}
		rho := (1 + float64(rng.Intn(4))) / (l * l) // thresholds 1..4 objects
		got := DenseRects(points, cell, rho, l)
		want := naiveDense(points, cell, rho, l)
		regionsEqual(t, got, want, "random oracle")
	}
}

func TestMatchesNaiveOracleClustered(t *testing.T) {
	for seed := int64(100); seed < 112; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cell := geom.Rect{MinX: 0, MinY: 0, MaxX: 50, MaxY: 50}
		l := 6.0
		var points []geom.Point
		for c := 0; c < 3; c++ {
			cx := rng.Float64() * 50
			cy := rng.Float64() * 50
			for k := 0; k < 15; k++ {
				points = append(points, geom.Point{
					X: cx + rng.NormFloat64()*3,
					Y: cy + rng.NormFloat64()*3,
				})
			}
		}
		rho := 6 / (l * l)
		got := DenseRects(points, cell, rho, l)
		want := naiveDense(points, cell, rho, l)
		regionsEqual(t, got, want, "clustered oracle")
	}
}

func TestCoincidentPoints(t *testing.T) {
	// Duplicate coordinates exercise event deduplication.
	points := []geom.Point{{X: 5, Y: 5}, {X: 5, Y: 5}, {X: 5, Y: 5}}
	cell := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	got := DenseRects(points, cell, 3.0/4.0, 2) // threshold 3
	want := geom.Region{{MinX: 4, MinY: 4, MaxX: 6, MaxY: 6}}
	regionsEqual(t, got, want, "coincident")
}

func TestOutputInsideCell(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cell := geom.Rect{MinX: 10, MinY: 10, MaxX: 20, MaxY: 20}
	points := make([]geom.Point, 100)
	for i := range points {
		points[i] = geom.Point{X: rng.Float64() * 30, Y: rng.Float64() * 30}
	}
	got := DenseRects(points, cell, 2.0/9.0, 3)
	for _, r := range got {
		if !cell.ContainsRect(r) {
			t.Fatalf("output rect %v exceeds cell %v", r, cell)
		}
	}
}

func TestDensePointsSampledVerification(t *testing.T) {
	// Sample points inside and outside the reported region; verify density
	// against the threshold directly.
	rng := rand.New(rand.NewSource(77))
	cell := geom.Rect{MinX: 0, MinY: 0, MaxX: 40, MaxY: 40}
	points := make([]geom.Point, 120)
	for i := range points {
		points[i] = geom.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40}
	}
	l := 8.0
	threshold := 10
	rho := float64(threshold) / (l * l)
	region := DenseRects(points, cell, rho, l)
	for trial := 0; trial < 3000; trial++ {
		p := geom.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40}
		dense := densityAt(points, p, l) >= threshold
		if got := region.Contains(p); got != dense {
			t.Fatalf("point %v: region says %v, direct density says %v", p, got, dense)
		}
	}
}

func BenchmarkDenseRects200(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cell := geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	points := make([]geom.Point, 200)
	for i := range points {
		points[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DenseRects(points, cell, 4.0/100.0, 10)
	}
}

// TestDedupClipsCapacity is the regression test for dedup's result aliasing:
// dedup compacts in place and its result shares the sweeper's retained
// scratch, so the returned slice must be capacity-clipped — a caller
// appending to it must reallocate instead of silently overwriting scratch
// the sweeper will reuse on its next call.
func TestDedupClipsCapacity(t *testing.T) {
	s := []float64{1, 1, 2, 3}
	d := dedup(s)
	if want := []float64{1, 2, 3}; !slices.Equal(d, want) {
		t.Fatalf("dedup = %v, want %v", d, want)
	}
	if cap(d) != len(d) {
		t.Fatalf("dedup result has spare capacity %d (len %d); appends would clobber retained scratch", cap(d), len(d))
	}
	_ = append(d, 99)
	if s[3] != 3 {
		t.Fatalf("append to dedup result clobbered the source buffer: %v", s)
	}
}
