// Package storage models the disk subsystem underneath the TPR-tree: a page
// store with an LRU buffer pool and physical-I/O accounting.
//
// The PDR paper evaluates I/O analytically — a 4 KB page size, a buffer of
// 10% of the dataset size, and 10 ms charged per random disk access — rather
// than measuring a physical disk. This package reproduces exactly that cost
// model: page payloads live in memory, but every buffer miss is counted as a
// physical read (and every dirty eviction as a physical write), and Stats
// converts the counts to time under a configurable per-I/O charge.
package storage

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pdr/internal/telemetry"
)

// PageID identifies a page in the store. The zero PageID is never allocated
// and can be used as a null reference.
type PageID uint64

// DefaultPageSize is the paper's page size (4 KB).
const DefaultPageSize = 4096

// DefaultRandomIO is the paper's charge per random disk access (10 ms).
const DefaultRandomIO = 10 * time.Millisecond

// Stats aggregates physical and logical I/O counters.
type Stats struct {
	// Reads is the number of physical page reads (buffer misses).
	Reads int64
	// Writes is the number of physical page writes (dirty evictions and
	// flushes).
	Writes int64
	// Hits is the number of logical reads served from the buffer.
	Hits int64
}

// RandomIOs returns the total number of physical accesses.
func (s Stats) RandomIOs() int64 { return s.Reads + s.Writes }

// IOTime returns the modelled time spent in physical I/O at the given charge
// per access.
func (s Stats) IOTime(perIO time.Duration) time.Duration {
	return time.Duration(s.RandomIOs()) * perIO
}

// Sub returns s - t, the delta between two snapshots.
func (s Stats) Sub(t Stats) Stats {
	return Stats{Reads: s.Reads - t.Reads, Writes: s.Writes - t.Writes, Hits: s.Hits - t.Hits}
}

// HitRatio returns the fraction of logical reads served from the buffer
// (hits / (hits + physical reads)), or 0 before any read. Both /v1/stats
// and the pdr_pool_hit_ratio gauge derive their value from the same
// increment sites, so the two surfaces always agree.
func (s Stats) HitRatio() float64 {
	logical := s.Hits + s.Reads
	if logical == 0 {
		return 0
	}
	return float64(s.Hits) / float64(logical)
}

// PoolMetrics mirrors the pool's I/O accounting into a telemetry registry:
// the raw counters become atomic instruments a concurrent /metrics scrape
// can read without the engine lock, and the hit ratio is derived from them
// at scrape time.
type PoolMetrics struct {
	reads, writes, hits *telemetry.Counter
	pages               *telemetry.Gauge
}

// NewPoolMetrics registers the buffer-pool instruments on reg.
func NewPoolMetrics(reg *telemetry.Registry) *PoolMetrics {
	m := &PoolMetrics{
		reads:  reg.Counter("pdr_pool_reads_total", "Physical page reads (buffer misses)."),
		writes: reg.Counter("pdr_pool_writes_total", "Physical page writes (dirty evictions and flushes)."),
		hits:   reg.Counter("pdr_pool_hits_total", "Logical reads served from the buffer."),
		pages:  reg.Gauge("pdr_pool_pages", "Pages currently allocated in the store."),
	}
	reg.GaugeFunc("pdr_pool_hit_ratio",
		"Fraction of logical reads served from the buffer.",
		func() float64 {
			return Stats{Reads: m.reads.Value(), Hits: m.hits.Value()}.HitRatio()
		})
	return m
}

// Pool is a page store fronted by an LRU buffer. A Pool with capacity <= 0
// never evicts (an effectively infinite buffer); pages still incur one read
// when first faulted after a Drop or when written back.
//
// Pool is safe for concurrent use: the buffer structures are guarded by a
// short-critical-section mutex (an LRU must reorder on every read, so reads
// cannot be lock-free), while the I/O counters are atomics so Stats and the
// telemetry mirror never take the lock. Concurrent readers therefore
// serialize only for the few pointer moves of the LRU touch, not for each
// other's page processing.
type Pool struct {
	capacity int // max resident pages; <=0 means unlimited; immutable

	mu sync.Mutex
	// disk holds the authoritative page payloads; guarded by mu.
	disk map[PageID]any
	// lru orders resident pages, front = most recently used, values are
	// PageID; guarded by mu.
	lru *list.List
	// index maps resident pages to their lru element; guarded by mu.
	index map[PageID]*list.Element
	// dirty marks pages that must be written back on eviction; guarded by mu.
	dirty map[PageID]bool
	// nextID is the page allocation cursor; guarded by mu.
	nextID PageID

	// I/O counters: atomic, lock-free for readers (see Stats).
	reads, writes, hits atomic.Int64

	// met mirrors counter increments into telemetry; atomic so attachment
	// needs no lock.
	met atomic.Pointer[PoolMetrics]
}

// NewPool creates a pool whose buffer holds at most capacityPages pages
// (unlimited if capacityPages <= 0).
func NewPool(capacityPages int) *Pool {
	return &Pool{
		capacity: capacityPages,
		disk:     make(map[PageID]any),
		lru:      list.New(),
		index:    make(map[PageID]*list.Element),
		dirty:    make(map[PageID]bool),
	}
}

// SetMetrics attaches telemetry instruments; every stats increment from
// here on is mirrored into them. The page gauge is seeded with the current
// allocation so late attachment stays accurate.
func (p *Pool) SetMetrics(m *PoolMetrics) {
	p.met.Store(m)
	if m != nil {
		p.mu.Lock()
		pages := len(p.disk)
		p.mu.Unlock()
		m.pages.Set(float64(pages))
	}
}

// Capacity returns the buffer capacity in pages (0 = unlimited).
func (p *Pool) Capacity() int {
	if p.capacity <= 0 {
		return 0
	}
	return p.capacity
}

// Alloc reserves a fresh page ID with a nil payload. The new page is
// considered resident and dirty (it must be written before eviction).
func (p *Pool) Alloc() PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextID++
	id := p.nextID
	p.disk[id] = nil
	p.touchLocked(id)
	p.dirty[id] = true
	if m := p.met.Load(); m != nil {
		m.pages.Add(1)
	}
	return id
}

// Read returns the payload of page id, counting a buffer hit or a physical
// read. It reports an error for unknown pages.
func (p *Pool) Read(id PageID) (any, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.disk[id]
	if !ok {
		return nil, fmt.Errorf("storage: read of unknown page %d", id)
	}
	if _, resident := p.index[id]; resident {
		p.hits.Add(1)
		if m := p.met.Load(); m != nil {
			m.hits.Inc()
		}
		p.touchLocked(id)
		return v, nil
	}
	p.reads.Add(1)
	if m := p.met.Load(); m != nil {
		m.reads.Inc()
	}
	p.touchLocked(id)
	return v, nil
}

// Write replaces the payload of page id and marks it dirty. Writing a page
// that is not resident faults it in (counted as a physical read would be
// unfair — the writer produces the full page — so no read is charged).
func (p *Pool) Write(id PageID, v any) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.disk[id]; !ok {
		return fmt.Errorf("storage: write to unknown page %d", id)
	}
	p.disk[id] = v
	p.touchLocked(id)
	p.dirty[id] = true
	return nil
}

// Free releases page id entirely.
func (p *Pool) Free(id PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.index[id]; ok {
		p.lru.Remove(el)
		delete(p.index, id)
	}
	delete(p.dirty, id)
	if _, ok := p.disk[id]; ok {
		if m := p.met.Load(); m != nil {
			m.pages.Add(-1)
		}
	}
	delete(p.disk, id)
}

// Flush writes back all dirty resident pages, counting one physical write
// per page.
func (p *Pool) Flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, d := range p.dirty {
		if d {
			p.writes.Add(1)
			if m := p.met.Load(); m != nil {
				m.writes.Inc()
			}
			p.dirty[id] = false
		}
	}
}

// Drop empties the buffer without counting writes (a cold restart); the next
// Read of every page will miss.
func (p *Pool) Drop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lru.Init()
	p.index = make(map[PageID]*list.Element)
	for id := range p.dirty {
		p.dirty[id] = false
	}
}

// Stats returns a snapshot of the I/O counters. It is lock-free: the
// counters are atomics, so a stats read (or a /metrics scrape) never stalls
// queries. The three counters are loaded individually, so a snapshot taken
// while queries run may be off by the odd in-flight increment — exact totals
// belong to quiescent moments, which is how every experiment reads them.
func (p *Pool) Stats() Stats {
	return Stats{Reads: p.reads.Load(), Writes: p.writes.Load(), Hits: p.hits.Load()}
}

// ResetStats zeroes the I/O counters.
func (p *Pool) ResetStats() {
	p.reads.Store(0)
	p.writes.Store(0)
	p.hits.Store(0)
}

// NumPages returns the number of allocated pages.
func (p *Pool) NumPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.disk)
}

// Resident returns the number of pages currently in the buffer.
func (p *Pool) Resident() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}

// touchLocked marks id most-recently-used, evicting if over capacity. The
// caller must hold mu.
func (p *Pool) touchLocked(id PageID) {
	if el, ok := p.index[id]; ok {
		p.lru.MoveToFront(el)
	} else {
		p.index[id] = p.lru.PushFront(id)
	}
	if p.capacity <= 0 {
		return
	}
	for p.lru.Len() > p.capacity {
		back := p.lru.Back()
		victim := back.Value.(PageID)
		if victim == id {
			// Never evict the page being touched.
			break
		}
		p.lru.Remove(back)
		delete(p.index, victim)
		if p.dirty[victim] {
			p.writes.Add(1)
			if m := p.met.Load(); m != nil {
				m.writes.Inc()
			}
			p.dirty[victim] = false
		}
	}
}
