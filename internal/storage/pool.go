// Package storage models the disk subsystem underneath the TPR-tree: a page
// store with an LRU buffer pool and physical-I/O accounting.
//
// The PDR paper evaluates I/O analytically — a 4 KB page size, a buffer of
// 10% of the dataset size, and 10 ms charged per random disk access — rather
// than measuring a physical disk. This package reproduces exactly that cost
// model: page payloads live in memory, but every buffer miss is counted as a
// physical read (and every dirty eviction as a physical write), and Stats
// converts the counts to time under a configurable per-I/O charge.
package storage

import (
	"container/list"
	"fmt"
	"time"

	"pdr/internal/telemetry"
)

// PageID identifies a page in the store. The zero PageID is never allocated
// and can be used as a null reference.
type PageID uint64

// DefaultPageSize is the paper's page size (4 KB).
const DefaultPageSize = 4096

// DefaultRandomIO is the paper's charge per random disk access (10 ms).
const DefaultRandomIO = 10 * time.Millisecond

// Stats aggregates physical and logical I/O counters.
type Stats struct {
	// Reads is the number of physical page reads (buffer misses).
	Reads int64
	// Writes is the number of physical page writes (dirty evictions and
	// flushes).
	Writes int64
	// Hits is the number of logical reads served from the buffer.
	Hits int64
}

// RandomIOs returns the total number of physical accesses.
func (s Stats) RandomIOs() int64 { return s.Reads + s.Writes }

// IOTime returns the modelled time spent in physical I/O at the given charge
// per access.
func (s Stats) IOTime(perIO time.Duration) time.Duration {
	return time.Duration(s.RandomIOs()) * perIO
}

// Sub returns s - t, the delta between two snapshots.
func (s Stats) Sub(t Stats) Stats {
	return Stats{Reads: s.Reads - t.Reads, Writes: s.Writes - t.Writes, Hits: s.Hits - t.Hits}
}

// HitRatio returns the fraction of logical reads served from the buffer
// (hits / (hits + physical reads)), or 0 before any read. Both /v1/stats
// and the pdr_pool_hit_ratio gauge derive their value from the same
// increment sites, so the two surfaces always agree.
func (s Stats) HitRatio() float64 {
	logical := s.Hits + s.Reads
	if logical == 0 {
		return 0
	}
	return float64(s.Hits) / float64(logical)
}

// PoolMetrics mirrors the pool's I/O accounting into a telemetry registry:
// the raw counters become atomic instruments a concurrent /metrics scrape
// can read without the engine lock, and the hit ratio is derived from them
// at scrape time.
type PoolMetrics struct {
	reads, writes, hits *telemetry.Counter
	pages               *telemetry.Gauge
}

// NewPoolMetrics registers the buffer-pool instruments on reg.
func NewPoolMetrics(reg *telemetry.Registry) *PoolMetrics {
	m := &PoolMetrics{
		reads:  reg.Counter("pdr_pool_reads_total", "Physical page reads (buffer misses)."),
		writes: reg.Counter("pdr_pool_writes_total", "Physical page writes (dirty evictions and flushes)."),
		hits:   reg.Counter("pdr_pool_hits_total", "Logical reads served from the buffer."),
		pages:  reg.Gauge("pdr_pool_pages", "Pages currently allocated in the store."),
	}
	reg.GaugeFunc("pdr_pool_hit_ratio",
		"Fraction of logical reads served from the buffer.",
		func() float64 {
			return Stats{Reads: m.reads.Value(), Hits: m.hits.Value()}.HitRatio()
		})
	return m
}

// Pool is a page store fronted by an LRU buffer. A Pool with capacity <= 0
// never evicts (an effectively infinite buffer); pages still incur one read
// when first faulted after a Drop or when written back.
//
// Pool is not safe for concurrent use; the PDR server serializes access.
type Pool struct {
	capacity int // max resident pages; <=0 means unlimited

	disk   map[PageID]any // authoritative page payloads
	lru    *list.List     // front = most recently used; values are PageID
	index  map[PageID]*list.Element
	dirty  map[PageID]bool
	nextID PageID
	stats  Stats
	met    *PoolMetrics // nil unless SetMetrics was called
}

// NewPool creates a pool whose buffer holds at most capacityPages pages
// (unlimited if capacityPages <= 0).
func NewPool(capacityPages int) *Pool {
	return &Pool{
		capacity: capacityPages,
		disk:     make(map[PageID]any),
		lru:      list.New(),
		index:    make(map[PageID]*list.Element),
		dirty:    make(map[PageID]bool),
	}
}

// SetMetrics attaches telemetry instruments; every stats increment from
// here on is mirrored into them. The page gauge is seeded with the current
// allocation so late attachment stays accurate.
func (p *Pool) SetMetrics(m *PoolMetrics) {
	p.met = m
	if m != nil {
		m.pages.Set(float64(len(p.disk)))
	}
}

// Capacity returns the buffer capacity in pages (0 = unlimited).
func (p *Pool) Capacity() int {
	if p.capacity <= 0 {
		return 0
	}
	return p.capacity
}

// Alloc reserves a fresh page ID with a nil payload. The new page is
// considered resident and dirty (it must be written before eviction).
func (p *Pool) Alloc() PageID {
	p.nextID++
	id := p.nextID
	p.disk[id] = nil
	p.touch(id)
	p.dirty[id] = true
	if p.met != nil {
		p.met.pages.Add(1)
	}
	return id
}

// Read returns the payload of page id, counting a buffer hit or a physical
// read. It reports an error for unknown pages.
func (p *Pool) Read(id PageID) (any, error) {
	v, ok := p.disk[id]
	if !ok {
		return nil, fmt.Errorf("storage: read of unknown page %d", id)
	}
	if _, resident := p.index[id]; resident {
		p.stats.Hits++
		if p.met != nil {
			p.met.hits.Inc()
		}
		p.touch(id)
		return v, nil
	}
	p.stats.Reads++
	if p.met != nil {
		p.met.reads.Inc()
	}
	p.touch(id)
	return v, nil
}

// Write replaces the payload of page id and marks it dirty. Writing a page
// that is not resident faults it in (counted as a physical read would be
// unfair — the writer produces the full page — so no read is charged).
func (p *Pool) Write(id PageID, v any) error {
	if _, ok := p.disk[id]; !ok {
		return fmt.Errorf("storage: write to unknown page %d", id)
	}
	p.disk[id] = v
	p.touch(id)
	p.dirty[id] = true
	return nil
}

// Free releases page id entirely.
func (p *Pool) Free(id PageID) {
	if el, ok := p.index[id]; ok {
		p.lru.Remove(el)
		delete(p.index, id)
	}
	delete(p.dirty, id)
	if _, ok := p.disk[id]; ok && p.met != nil {
		p.met.pages.Add(-1)
	}
	delete(p.disk, id)
}

// Flush writes back all dirty resident pages, counting one physical write
// per page.
func (p *Pool) Flush() {
	for id, d := range p.dirty {
		if d {
			p.stats.Writes++
			if p.met != nil {
				p.met.writes.Inc()
			}
			p.dirty[id] = false
		}
	}
}

// Drop empties the buffer without counting writes (a cold restart); the next
// Read of every page will miss.
func (p *Pool) Drop() {
	p.lru.Init()
	p.index = make(map[PageID]*list.Element)
	for id := range p.dirty {
		p.dirty[id] = false
	}
}

// Stats returns a snapshot of the I/O counters.
func (p *Pool) Stats() Stats { return p.stats }

// ResetStats zeroes the I/O counters.
func (p *Pool) ResetStats() { p.stats = Stats{} }

// NumPages returns the number of allocated pages.
func (p *Pool) NumPages() int { return len(p.disk) }

// Resident returns the number of pages currently in the buffer.
func (p *Pool) Resident() int { return p.lru.Len() }

// touch marks id most-recently-used, evicting if over capacity.
func (p *Pool) touch(id PageID) {
	if el, ok := p.index[id]; ok {
		p.lru.MoveToFront(el)
	} else {
		p.index[id] = p.lru.PushFront(id)
	}
	if p.capacity <= 0 {
		return
	}
	for p.lru.Len() > p.capacity {
		back := p.lru.Back()
		victim := back.Value.(PageID)
		if victim == id {
			// Never evict the page being touched.
			break
		}
		p.lru.Remove(back)
		delete(p.index, victim)
		if p.dirty[victim] {
			p.stats.Writes++
			if p.met != nil {
				p.met.writes.Inc()
			}
			p.dirty[victim] = false
		}
	}
}
