package storage

import (
	"bytes"
	"math"
	"pdr/internal/telemetry"
	"strings"
	"testing"
	"time"
)

func TestAllocReadWrite(t *testing.T) {
	p := NewPool(0)
	id := p.Alloc()
	if id == 0 {
		t.Fatal("Alloc returned the null PageID")
	}
	if err := p.Write(id, "hello"); err != nil {
		t.Fatal(err)
	}
	v, err := p.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if v != "hello" {
		t.Fatalf("Read = %v, want hello", v)
	}
	if p.NumPages() != 1 {
		t.Fatalf("NumPages = %d, want 1", p.NumPages())
	}
}

func TestUnknownPageErrors(t *testing.T) {
	p := NewPool(0)
	if _, err := p.Read(99); err == nil {
		t.Error("Read of unknown page must fail")
	}
	if err := p.Write(99, 1); err == nil {
		t.Error("Write to unknown page must fail")
	}
}

func TestResidentReadIsHit(t *testing.T) {
	p := NewPool(4)
	id := p.Alloc()
	p.Write(id, 42)
	before := p.Stats()
	if _, err := p.Read(id); err != nil {
		t.Fatal(err)
	}
	d := p.Stats().Sub(before)
	if d.Hits != 1 || d.Reads != 0 {
		t.Errorf("resident read: delta = %+v, want 1 hit, 0 reads", d)
	}
}

func TestEvictionAndMiss(t *testing.T) {
	p := NewPool(2)
	a, b, c := p.Alloc(), p.Alloc(), p.Alloc() // capacity 2: a evicted (dirty -> write)
	if p.Resident() > 2 {
		t.Fatalf("Resident = %d, want <= 2", p.Resident())
	}
	st := p.Stats()
	if st.Writes == 0 {
		t.Error("evicting a dirty page must count a physical write")
	}
	before := p.Stats()
	if _, err := p.Read(a); err != nil { // must miss
		t.Fatal(err)
	}
	if d := p.Stats().Sub(before); d.Reads != 1 {
		t.Errorf("faulting an evicted page: delta = %+v, want 1 read", d)
	}
	_ = b
	_ = c
}

func TestLRUOrder(t *testing.T) {
	p := NewPool(2)
	a, b := p.Alloc(), p.Alloc()
	p.Read(a) // a is now MRU; b is LRU
	_ = p.Alloc()
	// b must be the evicted one: re-reading a hits, re-reading b misses.
	before := p.Stats()
	p.Read(a)
	if d := p.Stats().Sub(before); d.Hits != 1 {
		t.Errorf("a should still be resident: %+v", d)
	}
	before = p.Stats()
	p.Read(b)
	if d := p.Stats().Sub(before); d.Reads != 1 {
		t.Errorf("b should have been evicted: %+v", d)
	}
}

func TestDropForcesColdReads(t *testing.T) {
	p := NewPool(0)
	ids := []PageID{p.Alloc(), p.Alloc(), p.Alloc()}
	p.Drop()
	before := p.Stats()
	for _, id := range ids {
		p.Read(id)
	}
	if d := p.Stats().Sub(before); d.Reads != 3 {
		t.Errorf("after Drop, reads = %d, want 3", d.Reads)
	}
}

func TestFlushCountsDirtyPagesOnce(t *testing.T) {
	p := NewPool(0)
	a, b := p.Alloc(), p.Alloc()
	p.Write(a, 1)
	p.Write(b, 2)
	before := p.Stats()
	p.Flush()
	if d := p.Stats().Sub(before); d.Writes != 2 {
		t.Errorf("Flush wrote %d, want 2", d.Writes)
	}
	before = p.Stats()
	p.Flush() // nothing dirty now
	if d := p.Stats().Sub(before); d.Writes != 0 {
		t.Errorf("second Flush wrote %d, want 0", d.Writes)
	}
}

func TestFreeReleases(t *testing.T) {
	p := NewPool(0)
	id := p.Alloc()
	p.Free(id)
	if p.NumPages() != 0 {
		t.Fatalf("NumPages = %d after Free, want 0", p.NumPages())
	}
	if _, err := p.Read(id); err == nil {
		t.Error("Read after Free must fail")
	}
}

func TestStatsModel(t *testing.T) {
	s := Stats{Reads: 3, Writes: 2, Hits: 10}
	if s.RandomIOs() != 5 {
		t.Errorf("RandomIOs = %d, want 5", s.RandomIOs())
	}
	if got := s.IOTime(DefaultRandomIO); got != 50*time.Millisecond {
		t.Errorf("IOTime = %v, want 50ms", got)
	}
	d := s.Sub(Stats{Reads: 1, Writes: 1, Hits: 4})
	if d != (Stats{Reads: 2, Writes: 1, Hits: 6}) {
		t.Errorf("Sub = %+v", d)
	}
}

func TestUnlimitedPoolNeverEvicts(t *testing.T) {
	p := NewPool(0)
	for i := 0; i < 1000; i++ {
		p.Alloc()
	}
	if p.Resident() != 1000 {
		t.Fatalf("Resident = %d, want 1000", p.Resident())
	}
	if p.Stats().Writes != 0 {
		t.Fatalf("unlimited pool must not evict; writes = %d", p.Stats().Writes)
	}
	if p.Capacity() != 0 {
		t.Fatalf("Capacity = %d, want 0", p.Capacity())
	}
}

// TestPoolHitRatioFreshProcess pins the zero-denominator guard: with no
// logical reads yet the ratio must be 0, not NaN — NaN in the
// pdr_pool_hit_ratio gauge (and /v1/stats poolHitRatio) breaks a Prometheus
// scrape of a fresh process.
func TestPoolHitRatioFreshProcess(t *testing.T) {
	if r := (Stats{}).HitRatio(); r != 0 || math.IsNaN(r) {
		t.Fatalf("fresh HitRatio = %v, want 0", r)
	}
	reg := telemetry.NewRegistry()
	NewPoolMetrics(reg)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if strings.Contains(body, "NaN") {
		t.Fatalf("fresh exposition contains NaN:\n%s", body)
	}
	if !strings.Contains(body, "pdr_pool_hit_ratio 0") {
		t.Fatalf("fresh exposition missing zero hit ratio:\n%s", body)
	}
}
