// Package history archives finished movement segments so PDR queries can be
// answered for *past* timestamps — the audit-trail counterpart to the
// engine's predictive queries. Segments are partitioned into fixed-width
// time buckets (SETI-style: temporal partitioning first, spatial filtering
// inside the partition), so a past snapshot touches only the segments whose
// validity interval intersects one bucket.
package history

import (
	"fmt"

	"pdr/internal/geom"
	"pdr/internal/motion"
	"pdr/internal/sweep"
)

// Segment is one archived movement: the linear motion State was the
// object's active movement during [From, To).
type Segment struct {
	State    motion.State
	From, To motion.Tick
}

// Valid reports whether the segment was active at time t.
func (s Segment) Valid(t motion.Tick) bool { return t >= s.From && t < s.To }

// Config parameterizes the store.
type Config struct {
	// Area is the monitored plane (positions outside it do not exist, the
	// same contract as the live engine).
	Area geom.Rect
	// BucketTicks is the temporal partition width (a natural choice is the
	// maximum update interval U, bounding segments per bucket).
	BucketTicks motion.Tick
}

// Store is an append-only archive of movement segments.
type Store struct {
	cfg     Config
	buckets map[int64][]Segment
	count   int
	minT    motion.Tick
	maxT    motion.Tick
	any     bool
}

// New creates an empty store.
func New(cfg Config) (*Store, error) {
	if cfg.Area.IsEmpty() {
		return nil, fmt.Errorf("history: empty area")
	}
	if cfg.BucketTicks <= 0 {
		return nil, fmt.Errorf("history: bucket width must be positive, got %d", cfg.BucketTicks)
	}
	return &Store{cfg: cfg, buckets: make(map[int64][]Segment)}, nil
}

// Len returns the number of archived segments.
func (st *Store) Len() int { return st.count }

// Span returns the archived time range [min, max) (zeroes when empty).
func (st *Store) Span() (motion.Tick, motion.Tick) {
	if !st.any {
		return 0, 0
	}
	return st.minT, st.maxT
}

func (st *Store) bucketOf(t motion.Tick) int64 {
	b := int64(t) / int64(st.cfg.BucketTicks)
	if t < 0 && int64(t)%int64(st.cfg.BucketTicks) != 0 {
		b--
	}
	return b
}

// Record archives a segment; it is added to every time bucket its validity
// interval overlaps. Zero- or negative-length segments are rejected.
func (st *Store) Record(seg Segment) error {
	if seg.To <= seg.From {
		return fmt.Errorf("history: empty segment [%d, %d)", seg.From, seg.To)
	}
	for b := st.bucketOf(seg.From); b <= st.bucketOf(seg.To-1); b++ {
		st.buckets[b] = append(st.buckets[b], seg)
	}
	st.count++
	if !st.any || seg.From < st.minT {
		st.minT = seg.From
	}
	if !st.any || seg.To > st.maxT {
		st.maxT = seg.To
	}
	st.any = true
	return nil
}

// PointsAt returns the in-area positions of every object at past time t.
func (st *Store) PointsAt(t motion.Tick) []geom.Point {
	var out []geom.Point
	for _, seg := range st.buckets[st.bucketOf(t)] {
		if !seg.Valid(t) {
			continue
		}
		p := seg.State.PositionAt(t)
		if st.cfg.Area.Contains(p) {
			out = append(out, p)
		}
	}
	return out
}

// DenseRegion answers the snapshot PDR query (rho, l, t) for a past
// timestamp, exactly, by a global plane sweep over the archived positions.
func (st *Store) DenseRegion(t motion.Tick, rho, l float64) geom.Region {
	return geom.Coalesce(sweep.DenseRects(st.PointsAt(t), st.cfg.Area, rho, l))
}

// IntervalDenseRegion answers the interval PDR query (rho, l, [t1, t2]) for
// past timestamps: the union of the snapshot answers (paper Definition 5).
func (st *Store) IntervalDenseRegion(t1, t2 motion.Tick, rho, l float64) (geom.Region, error) {
	if t2 < t1 {
		return nil, fmt.Errorf("history: empty interval [%d, %d]", t1, t2)
	}
	var out geom.Region
	for t := t1; t <= t2; t++ {
		out = append(out, st.DenseRegion(t, rho, l)...)
	}
	return geom.Coalesce(out), nil
}
