package history

import (
	"math"
	"math/rand"
	"testing"

	"pdr/internal/geom"
	"pdr/internal/motion"
	"pdr/internal/sweep"
)

func area1000() geom.Rect { return geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000} }

func newStore(t *testing.T) *Store {
	t.Helper()
	st, err := New(Config{Area: area1000(), BucketTicks: 10})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{BucketTicks: 10}); err == nil {
		t.Error("empty area must be rejected")
	}
	if _, err := New(Config{Area: area1000()}); err == nil {
		t.Error("zero bucket width must be rejected")
	}
}

func TestRecordValidation(t *testing.T) {
	st := newStore(t)
	if err := st.Record(Segment{From: 5, To: 5}); err == nil {
		t.Error("empty segment must be rejected")
	}
	if err := st.Record(Segment{From: 5, To: 3}); err == nil {
		t.Error("reversed segment must be rejected")
	}
	if st.Len() != 0 {
		t.Error("rejected segments must not count")
	}
}

func TestPointsAtRespectsValidity(t *testing.T) {
	st := newStore(t)
	seg := Segment{
		State: motion.State{ID: 1, Pos: geom.Point{X: 100, Y: 100}, Vel: geom.Vec{X: 1, Y: 0}, Ref: 10},
		From:  10, To: 25,
	}
	if err := st.Record(seg); err != nil {
		t.Fatal(err)
	}
	if got := st.PointsAt(9); len(got) != 0 {
		t.Errorf("before From: %v", got)
	}
	if got := st.PointsAt(10); len(got) != 1 || got[0] != (geom.Point{X: 100, Y: 100}) {
		t.Errorf("at From: %v", got)
	}
	if got := st.PointsAt(24); len(got) != 1 || got[0] != (geom.Point{X: 114, Y: 100}) {
		t.Errorf("at To-1: %v", got)
	}
	if got := st.PointsAt(25); len(got) != 0 {
		t.Errorf("at To (exclusive): %v", got)
	}
	lo, hi := st.Span()
	if lo != 10 || hi != 25 {
		t.Errorf("Span = [%d, %d), want [10, 25)", lo, hi)
	}
}

func TestSegmentSpanningBuckets(t *testing.T) {
	// Bucket width 10; a segment [5, 35) overlaps buckets 0..3 and must be
	// found when querying any of them.
	st := newStore(t)
	seg := Segment{
		State: motion.State{ID: 2, Pos: geom.Point{X: 500, Y: 500}, Ref: 5},
		From:  5, To: 35,
	}
	if err := st.Record(seg); err != nil {
		t.Fatal(err)
	}
	for _, qt := range []motion.Tick{5, 14, 23, 34} {
		if got := st.PointsAt(qt); len(got) != 1 {
			t.Errorf("t=%d: %d points, want 1", qt, len(got))
		}
	}
}

func TestOutOfAreaPositionsDropped(t *testing.T) {
	st := newStore(t)
	// Racing out of the area: outside after t=10.
	seg := Segment{
		State: motion.State{ID: 3, Pos: geom.Point{X: 995, Y: 500}, Vel: geom.Vec{X: 1, Y: 0}, Ref: 0},
		From:  0, To: 20,
	}
	if err := st.Record(seg); err != nil {
		t.Fatal(err)
	}
	if got := st.PointsAt(4); len(got) != 1 {
		t.Errorf("inside: %d points", len(got))
	}
	if got := st.PointsAt(15); len(got) != 0 {
		t.Errorf("outside the area: %v", got)
	}
}

func TestDenseRegionMatchesDirectSweep(t *testing.T) {
	st := newStore(t)
	rng := rand.New(rand.NewSource(1))
	var segs []Segment
	for i := 0; i < 300; i++ {
		s := Segment{
			State: motion.State{
				ID:  motion.ObjectID(i),
				Pos: geom.Point{X: 400 + rng.Float64()*200, Y: 400 + rng.Float64()*200},
				Vel: geom.Vec{X: rng.Float64() - 0.5, Y: rng.Float64() - 0.5},
				Ref: motion.Tick(rng.Intn(20)),
			},
		}
		s.From = s.State.Ref
		s.To = s.From + 5 + motion.Tick(rng.Intn(30))
		segs = append(segs, s)
		if err := st.Record(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, qt := range []motion.Tick{0, 10, 25, 40} {
		var pts []geom.Point
		for _, s := range segs {
			if s.Valid(qt) {
				p := s.State.PositionAt(qt)
				if area1000().Contains(p) {
					pts = append(pts, p)
				}
			}
		}
		rho := 5.0 / (60 * 60)
		got := st.DenseRegion(qt, rho, 60)
		want := sweep.DenseRects(pts, area1000(), rho, 60)
		if math.Abs(got.Area()-want.Area()) > 1e-6 {
			t.Fatalf("t=%d: area %g, want %g", qt, got.Area(), want.Area())
		}
		if d := got.DifferenceArea(want) + want.DifferenceArea(got); d > 1e-6 {
			t.Fatalf("t=%d: regions differ by %g", qt, d)
		}
	}
}

func TestIntervalDenseRegion(t *testing.T) {
	st := newStore(t)
	// Two bursts at different times and places.
	for i := 0; i < 10; i++ {
		st.Record(Segment{
			State: motion.State{ID: motion.ObjectID(i), Pos: geom.Point{X: 100 + float64(i)*0.1, Y: 100}, Ref: 0},
			From:  0, To: 5,
		})
		st.Record(Segment{
			State: motion.State{ID: motion.ObjectID(100 + i), Pos: geom.Point{X: 800 + float64(i)*0.1, Y: 800}, Ref: 10},
			From:  10, To: 15,
		})
	}
	rho := 5.0 / (40 * 40)
	iv, err := st.IntervalDenseRegion(0, 14, rho, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(geom.Point{X: 100, Y: 100}) || !iv.Contains(geom.Point{X: 800, Y: 800}) {
		t.Error("interval union must include both bursts")
	}
	// A snapshot at t=7 sees neither.
	if got := st.DenseRegion(7, rho, 40); len(got) != 0 {
		t.Errorf("t=7 should be empty, got %v", got)
	}
	if _, err := st.IntervalDenseRegion(5, 3, rho, 40); err == nil {
		t.Error("reversed interval must be rejected")
	}
}
