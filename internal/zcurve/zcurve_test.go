package zcurve

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInterleaveKnown(t *testing.T) {
	cases := []struct {
		x, y uint32
		want uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 2},
		{1, 1, 3},
		{2, 0, 4},
		{3, 3, 15},
		{0xffffffff, 0, 0x5555555555555555},
		{0, 0xffffffff, 0xaaaaaaaaaaaaaaaa},
	}
	for _, c := range cases {
		if got := Interleave(c.x, c.y); got != c.want {
			t.Errorf("Interleave(%d, %d) = %#x, want %#x", c.x, c.y, got, c.want)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(x, y uint32) bool {
		gx, gy := Deinterleave(Interleave(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMonotoneInQuadrant(t *testing.T) {
	// Within one dimension the curve is monotone: growing x (y fixed)
	// grows the code.
	f := func(x uint32, y uint32) bool {
		if x == 0xffffffff {
			return true
		}
		return Interleave(x, y) < Interleave(x+1, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// bruteBigMin finds the smallest in-window code > code by linear scan over
// a small grid.
func bruteBigMin(code uint64, x1, y1, x2, y2 uint32) (uint64, bool) {
	best := uint64(0)
	found := false
	for x := x1; x <= x2; x++ {
		for y := y1; y <= y2; y++ {
			z := Interleave(x, y)
			if z > code && (!found || z < best) {
				best = z
				found = true
			}
		}
	}
	return best, found
}

func TestBigMinAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 3000; trial++ {
		x1 := uint32(rng.Intn(24))
		y1 := uint32(rng.Intn(24))
		x2 := x1 + uint32(rng.Intn(8))
		y2 := y1 + uint32(rng.Intn(8))
		// Codes around the window, inside and outside.
		code := Interleave(uint32(rng.Intn(36)), uint32(rng.Intn(36)))
		got, gok := BigMin(code, x1, y1, x2, y2)
		want, wok := bruteBigMin(code, x1, y1, x2, y2)
		if gok != wok || (gok && got != want) {
			t.Fatalf("BigMin(%#x, [%d,%d]..[%d,%d]) = (%#x, %v), want (%#x, %v)",
				code, x1, y1, x2, y2, got, gok, want, wok)
		}
	}
}

func TestBigMinProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		x1 := rng.Uint32() >> 18
		y1 := rng.Uint32() >> 18
		x2 := x1 + rng.Uint32()>>24
		y2 := y1 + rng.Uint32()>>24
		code := Interleave(rng.Uint32()>>18, rng.Uint32()>>18)
		bm, ok := BigMin(code, x1, y1, x2, y2)
		if !ok {
			// Nothing in the window above code: the window max must be <= code.
			if zmax := Interleave(x2, y2); zmax > code {
				// There may still genuinely be no in-window code > code even
				// when zmax > code? No: zmax itself is in-window and > code.
				t.Fatalf("BigMin said none, but zmax %#x > code %#x", zmax, code)
			}
			continue
		}
		if bm <= code {
			t.Fatalf("BigMin %#x <= code %#x", bm, code)
		}
		if !InWindow(bm, x1, y1, x2, y2) {
			t.Fatalf("BigMin %#x outside window", bm)
		}
	}
}

func TestInWindow(t *testing.T) {
	z := Interleave(5, 7)
	if !InWindow(z, 5, 7, 5, 7) {
		t.Error("exact cell must be in its own window")
	}
	if InWindow(z, 6, 7, 9, 9) {
		t.Error("cell left of window reported inside")
	}
}
