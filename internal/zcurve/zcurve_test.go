package zcurve

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInterleaveKnown(t *testing.T) {
	cases := []struct {
		x, y uint32
		want uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 2},
		{1, 1, 3},
		{2, 0, 4},
		{3, 3, 15},
		{0xffffffff, 0, 0x5555555555555555},
		{0, 0xffffffff, 0xaaaaaaaaaaaaaaaa},
	}
	for _, c := range cases {
		if got := Interleave(c.x, c.y); got != c.want {
			t.Errorf("Interleave(%d, %d) = %#x, want %#x", c.x, c.y, got, c.want)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(x, y uint32) bool {
		gx, gy := Deinterleave(Interleave(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMonotoneInQuadrant(t *testing.T) {
	// Within one dimension the curve is monotone: growing x (y fixed)
	// grows the code.
	f := func(x uint32, y uint32) bool {
		if x == 0xffffffff {
			return true
		}
		return Interleave(x, y) < Interleave(x+1, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// bruteBigMin finds the smallest in-window code > code by linear scan over
// a small grid.
func bruteBigMin(code uint64, x1, y1, x2, y2 uint32) (uint64, bool) {
	best := uint64(0)
	found := false
	for x := x1; x <= x2; x++ {
		for y := y1; y <= y2; y++ {
			z := Interleave(x, y)
			if z > code && (!found || z < best) {
				best = z
				found = true
			}
		}
	}
	return best, found
}

func TestBigMinAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 3000; trial++ {
		x1 := uint32(rng.Intn(24))
		y1 := uint32(rng.Intn(24))
		x2 := x1 + uint32(rng.Intn(8))
		y2 := y1 + uint32(rng.Intn(8))
		// Codes around the window, inside and outside.
		code := Interleave(uint32(rng.Intn(36)), uint32(rng.Intn(36)))
		got, gok := BigMin(code, x1, y1, x2, y2)
		want, wok := bruteBigMin(code, x1, y1, x2, y2)
		if gok != wok || (gok && got != want) {
			t.Fatalf("BigMin(%#x, [%d,%d]..[%d,%d]) = (%#x, %v), want (%#x, %v)",
				code, x1, y1, x2, y2, got, gok, want, wok)
		}
	}
}

func TestBigMinProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		x1 := rng.Uint32() >> 18
		y1 := rng.Uint32() >> 18
		x2 := x1 + rng.Uint32()>>24
		y2 := y1 + rng.Uint32()>>24
		code := Interleave(rng.Uint32()>>18, rng.Uint32()>>18)
		bm, ok := BigMin(code, x1, y1, x2, y2)
		if !ok {
			// Nothing in the window above code: the window max must be <= code.
			if zmax := Interleave(x2, y2); zmax > code {
				// There may still genuinely be no in-window code > code even
				// when zmax > code? No: zmax itself is in-window and > code.
				t.Fatalf("BigMin said none, but zmax %#x > code %#x", zmax, code)
			}
			continue
		}
		if bm <= code {
			t.Fatalf("BigMin %#x <= code %#x", bm, code)
		}
		if !InWindow(bm, x1, y1, x2, y2) {
			t.Fatalf("BigMin %#x outside window", bm)
		}
	}
}

// TestBigMinEdgeCases pins the boundary behavior the random tests are
// unlikely to hit: windows at the coordinate extremes, single-cell windows,
// and codes already at or past the window's maximum.
func TestBigMinEdgeCases(t *testing.T) {
	const max = uint32(0xffffffff)

	// Single-cell window: the only candidate is the cell's own code, and
	// only while the scan position is strictly below it.
	z := Interleave(9, 4)
	if bm, ok := BigMin(0, 9, 4, 9, 4); !ok || bm != z {
		t.Fatalf("BigMin(0, single cell) = (%#x, %v), want (%#x, true)", bm, ok, z)
	}
	if bm, ok := BigMin(z-1, 9, 4, 9, 4); !ok || bm != z {
		t.Fatalf("BigMin(z-1, single cell) = (%#x, %v), want (%#x, true)", bm, ok, z)
	}
	if _, ok := BigMin(z, 9, 4, 9, 4); ok {
		t.Fatal("BigMin must be strictly greater: the cell's own code is not an answer")
	}
	if _, ok := BigMin(z+1, 9, 4, 9, 4); ok {
		t.Fatal("code past a single-cell window has no BigMin")
	}

	// The origin cell's code is 0, so nothing in its window exceeds 0.
	if _, ok := BigMin(0, 0, 0, 0, 0); ok {
		t.Fatal("BigMin(0, origin cell) must not exist")
	}

	// Window pinned at the top corner of the coordinate space: the answer
	// saturates at the all-ones code without overflowing.
	ztop := Interleave(max, max)
	if ztop != ^uint64(0) {
		t.Fatalf("top-corner code = %#x, want all ones", ztop)
	}
	if bm, ok := BigMin(ztop-1, max, max, max, max); !ok || bm != ztop {
		t.Fatalf("BigMin(ztop-1, top corner) = (%#x, %v), want (%#x, true)", bm, ok, ztop)
	}
	if _, ok := BigMin(ztop, max, max, max, max); ok {
		t.Fatal("no code exceeds the all-ones corner")
	}

	// Full-domain window: every code's successor is code+1.
	for _, code := range []uint64{0, 1, 0x5555555555555555, 0xaaaaaaaaaaaaaaaa, ztop - 1} {
		if bm, ok := BigMin(code, 0, 0, max, max); !ok || bm != code+1 {
			t.Fatalf("BigMin(%#x, full domain) = (%#x, %v), want (%#x, true)", code, bm, ok, code+1)
		}
	}
	if _, ok := BigMin(ztop, 0, 0, max, max); ok {
		t.Fatal("BigMin(all ones, full domain) must not exist")
	}

	// Code far past the window in curve order: monotonicity puts every
	// in-window code below it.
	if _, ok := BigMin(Interleave(100, 100), 2, 2, 5, 5); ok {
		t.Fatal("code beyond the window max has no BigMin")
	}

	// Window hugging the top corner, scan position at the very bottom: the
	// answer is the window minimum.
	if bm, ok := BigMin(0, max-1, max-1, max, max); !ok || bm != Interleave(max-1, max-1) {
		t.Fatalf("BigMin(0, corner window) = (%#x, %v), want window min %#x", bm, ok, Interleave(max-1, max-1))
	}
}

// FuzzBigMinInWindow is the InWindow/BigMin agreement target scripts/check.sh
// smoke-runs: the two must tell one consistent story about which codes a
// range scan may skip. Coordinates are checked twice — masked to a small
// grid where exact brute force is affordable, and raw for the ordering and
// membership invariants.
func FuzzBigMinInWindow(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(4), uint32(4), uint64(7))
	f.Add(uint32(9), uint32(4), uint32(9), uint32(4), uint64(0))
	f.Add(uint32(0xffffffff), uint32(0xffffffff), uint32(0xffffffff), uint32(0xffffffff), ^uint64(0)-1)
	f.Add(uint32(3), uint32(60), uint32(40), uint32(61), uint64(0x2f))
	f.Fuzz(func(t *testing.T, x1, y1, x2, y2 uint32, code uint64) {
		if x2 < x1 {
			x1, x2 = x2, x1
		}
		if y2 < y1 {
			y1, y2 = y2, y1
		}
		// Raw-range invariants: strictly greater, inside the window, and
		// complete (a miss means the window truly holds nothing above code,
		// whose witness is the window's maximum code Interleave(x2, y2)).
		bm, ok := BigMin(code, x1, y1, x2, y2)
		if ok {
			if bm <= code {
				t.Fatalf("BigMin(%#x) = %#x is not strictly greater", code, bm)
			}
			if !InWindow(bm, x1, y1, x2, y2) {
				t.Fatalf("BigMin(%#x) = %#x outside window [%d,%d]..[%d,%d]", code, bm, x1, y1, x2, y2)
			}
		} else if zmax := Interleave(x2, y2); zmax > code {
			t.Fatalf("BigMin(%#x) found nothing but window max %#x exceeds it", code, zmax)
		}
		// Small-grid exactness: brute force over every cell.
		sx1, sy1, sx2, sy2 := x1&31, y1&31, x2&31, y2&31
		if sx2 < sx1 {
			sx1, sx2 = sx2, sx1
		}
		if sy2 < sy1 {
			sy1, sy2 = sy2, sy1
		}
		scode := code & 0xfff // within the 64x64 code range
		got, gok := BigMin(scode, sx1, sy1, sx2, sy2)
		want, wok := bruteBigMin(scode, sx1, sy1, sx2, sy2)
		if gok != wok || (gok && got != want) {
			t.Fatalf("BigMin(%#x, [%d,%d]..[%d,%d]) = (%#x, %v), want (%#x, %v)",
				scode, sx1, sy1, sx2, sy2, got, gok, want, wok)
		}
	})
}

func TestInWindow(t *testing.T) {
	z := Interleave(5, 7)
	if !InWindow(z, 5, 7, 5, 7) {
		t.Error("exact cell must be in its own window")
	}
	if InWindow(z, 6, 7, 9, 9) {
		t.Error("cell left of window reported inside")
	}
}
