// Package zcurve implements the two-dimensional Z-order (Morton) curve used
// by the B^x-tree to linearize object positions into B+-tree keys, including
// the BIGMIN computation (Tropf & Herzog) that lets range scans skip the
// curve segments lying outside a query window.
package zcurve

// Interleave maps grid cell (x, y) to its Morton code: bit i of x lands at
// code bit 2i, bit i of y at 2i+1.
func Interleave(x, y uint32) uint64 {
	return spread(x) | spread(y)<<1
}

// Deinterleave is the inverse of Interleave.
func Deinterleave(code uint64) (x, y uint32) {
	return compact(code), compact(code >> 1)
}

// spread inserts a zero bit between consecutive bits of v.
func spread(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// compact removes the interleaved zero bits (inverse of spread).
func compact(x uint64) uint32 {
	x &= 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0f0f0f0f0f0f0f0f
	x = (x | x>>4) & 0x00ff00ff00ff00ff
	x = (x | x>>8) & 0x0000ffff0000ffff
	x = (x | x>>16) & 0x00000000ffffffff
	return uint32(x)
}

// InWindow reports whether code's cell lies inside the window
// [x1, x2] x [y1, y2] (inclusive grid bounds).
func InWindow(code uint64, x1, y1, x2, y2 uint32) bool {
	x, y := Deinterleave(code)
	return x >= x1 && x <= x2 && y >= y1 && y <= y2
}

// BigMin returns the smallest Morton code greater than code that lies inside
// the window [x1, y1]..[x2, y2], and whether such a code exists. A range
// scan positioned on a code outside the window jumps directly to BigMin
// instead of walking the gap (Tropf & Herzog 1981).
func BigMin(code uint64, x1, y1, x2, y2 uint32) (uint64, bool) {
	zmin := Interleave(x1, y1)
	zmax := Interleave(x2, y2)
	var bigmin uint64
	found := false
	// Walk bits from the most significant; maintain the shrinking window
	// [zmin, zmax] of the current quadrant.
	for bit := 63; bit >= 0; bit-- {
		mask := uint64(1) << uint(bit)
		zBit := code & mask
		minBit := zmin & mask
		maxBit := zmax & mask
		switch {
		case zBit == 0 && minBit == 0 && maxBit == 0:
			// Stay in the low half.
		case zBit == 0 && minBit == 0 && maxBit != 0:
			// Window spans both halves: the high half's minimum is a
			// BIGMIN candidate; continue searching the low half.
			bigmin = loadOnes(zmin, bit)
			found = true
			zmax = loadZeros(zmax, bit)
		case zBit == 0 && minBit != 0 && maxBit != 0:
			// Window entirely in the high half: its minimum is the answer.
			return zmin, true
		case zBit != 0 && minBit == 0 && maxBit == 0:
			// Window entirely in the low half, code above it: no code in
			// this quadrant exceeds code; the saved candidate (if any) is
			// the answer.
			return bigmin, found
		case zBit != 0 && minBit == 0 && maxBit != 0:
			// Continue in the high half.
			zmin = loadOnes(zmin, bit)
		case zBit != 0 && minBit != 0 && maxBit != 0:
			// Stay in the high half.
		default:
			// minBit set but maxBit clear cannot happen for a valid window.
			return bigmin, found
		}
	}
	return bigmin, found
}

// loadOnes returns v with bit set and all lower bits of the same dimension
// pattern... it sets bit `bit` and clears the lower bits that belong to the
// same dimension (every second bit below), per the Tropf-Herzog LOAD
// operation: value 10000... in the dimension of bit.
func loadOnes(v uint64, bit int) uint64 {
	mask := uint64(1) << uint(bit)
	dim := dimMaskBelow(bit)
	return (v &^ dim) | mask
}

// loadZeros clears bit `bit` and sets all lower bits of its dimension:
// value 01111... in the dimension of bit.
func loadZeros(v uint64, bit int) uint64 {
	mask := uint64(1) << uint(bit)
	dim := dimMaskBelow(bit)
	return (v &^ mask) | (dim &^ mask)
}

// dimMaskBelow returns the mask of bits at and below `bit` belonging to the
// same interleaved dimension (same parity).
func dimMaskBelow(bit int) uint64 {
	var base uint64 = 0x5555555555555555
	if bit%2 == 1 {
		base = 0xaaaaaaaaaaaaaaaa
	}
	// Bits strictly above `bit` are masked off; include `bit` itself.
	keep := uint64(1)<<uint(bit) | (uint64(1)<<uint(bit) - 1)
	return base & keep
}
