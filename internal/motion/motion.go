// Package motion defines the linear motion model for moving objects and the
// location-update records exchanged between objects and the server, exactly
// as assumed by the PDR paper (Sec. 4): each object is a point that reports
// its current location and velocity, and its predicted position at time
// t >= tref is pos + (t - tref) * vel.
//
// Time is discrete: the system advances in integer ticks. All per-timestamp
// summary structures (density histograms, Chebyshev surfaces) are maintained
// for every tick in the horizon [tnow, tnow+H].
package motion

import "pdr/internal/geom"

// Tick is a discrete timestamp.
type Tick int64

// ObjectID identifies a moving object.
type ObjectID uint64

// State is the motion state of one object: at time Ref it was at Pos moving
// with velocity Vel (distance units per tick).
type State struct {
	ID  ObjectID
	Pos geom.Point
	Vel geom.Vec
	Ref Tick
}

// PositionAt returns the predicted position of the object at time t under
// the linear motion model. t may precede Ref, in which case the motion is
// extrapolated backwards.
func (s State) PositionAt(t Tick) geom.Point {
	dt := float64(t - s.Ref)
	return geom.Point{X: s.Pos.X + dt*s.Vel.X, Y: s.Pos.Y + dt*s.Vel.Y}
}

// UpdateKind distinguishes insertions from deletions in the update stream.
type UpdateKind uint8

const (
	// Insert registers a new movement that starts at Update.State.Ref.
	Insert UpdateKind = iota
	// Delete removes a previously inserted movement (same State values as
	// the matching Insert).
	Delete
)

// String implements fmt.Stringer.
func (k UpdateKind) String() string {
	switch k {
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	default:
		return "unknown"
	}
}

// Update is one element of the location-update stream. A location report at
// time tnow from an object that is already known is modelled, as in the
// paper, as a Delete of the stale movement followed by an Insert of the new
// one; both carry At = tnow, the server time at which they are applied.
type Update struct {
	Kind  UpdateKind
	State State
	At    Tick
}

// NewInsert builds an insertion update applied at the state's own reference
// time.
func NewInsert(s State) Update {
	return Update{Kind: Insert, State: s, At: s.Ref}
}

// NewDelete builds a deletion update for the stale movement old, applied at
// server time now.
func NewDelete(old State, now Tick) Update {
	return Update{Kind: Delete, State: old, At: now}
}
