package motion

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pdr/internal/geom"
)

func TestPositionAt(t *testing.T) {
	s := State{ID: 1, Pos: geom.Point{X: 10, Y: 20}, Vel: geom.Vec{X: 1, Y: -2}, Ref: 100}
	cases := []struct {
		t    Tick
		want geom.Point
	}{
		{100, geom.Point{X: 10, Y: 20}},
		{101, geom.Point{X: 11, Y: 18}},
		{110, geom.Point{X: 20, Y: 0}},
		{99, geom.Point{X: 9, Y: 22}}, // backwards extrapolation
	}
	for _, c := range cases {
		if got := s.PositionAt(c.t); got != c.want {
			t.Errorf("PositionAt(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestQuickMotionComposition(t *testing.T) {
	// Moving dt1 then re-anchoring and moving dt2 equals moving dt1+dt2.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := State{
			Pos: geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			Vel: geom.Vec{X: rng.Float64()*4 - 2, Y: rng.Float64()*4 - 2},
			Ref: Tick(rng.Intn(1000)),
		}
		dt1, dt2 := Tick(rng.Intn(100)), Tick(rng.Intn(100))
		mid := State{Pos: s.PositionAt(s.Ref + dt1), Vel: s.Vel, Ref: s.Ref + dt1}
		a := s.PositionAt(s.Ref + dt1 + dt2)
		b := mid.PositionAt(mid.Ref + dt2)
		return math.Abs(a.X-b.X) < 1e-6 && math.Abs(a.Y-b.Y) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUpdateConstructors(t *testing.T) {
	s := State{ID: 7, Pos: geom.Point{X: 1, Y: 2}, Vel: geom.Vec{X: 3, Y: 4}, Ref: 50}
	ins := NewInsert(s)
	if ins.Kind != Insert || ins.At != 50 || ins.State != s {
		t.Errorf("NewInsert = %+v", ins)
	}
	del := NewDelete(s, 60)
	if del.Kind != Delete || del.At != 60 || del.State != s {
		t.Errorf("NewDelete = %+v", del)
	}
	if Insert.String() != "insert" || Delete.String() != "delete" || UpdateKind(9).String() != "unknown" {
		t.Error("UpdateKind.String mismatch")
	}
}
