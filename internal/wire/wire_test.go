package wire

import (
	"bytes"
	"strings"
	"testing"

	"pdr/internal/geom"
	"pdr/internal/motion"
)

type mockServer struct {
	loaded  []motion.State
	ticks   []motion.Tick
	updates [][]motion.Update
}

func (m *mockServer) Load(states []motion.State) error {
	m.loaded = append([]motion.State(nil), states...)
	return nil
}

func (m *mockServer) Tick(now motion.Tick, updates []motion.Update) error {
	m.ticks = append(m.ticks, now)
	m.updates = append(m.updates, append([]motion.Update(nil), updates...))
	return nil
}

func sampleState(id int) motion.State {
	return motion.State{
		ID:  motion.ObjectID(id),
		Pos: geom.Point{X: float64(id), Y: float64(2 * id)},
		Vel: geom.Vec{X: 0.5, Y: -0.25},
		Ref: 0,
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	s1, s2 := sampleState(1), sampleState(2)
	if err := w.Write(FromState(KindState, s1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(FromState(KindState, s2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{Kind: KindTick, Tick: 1}); err != nil {
		t.Fatal(err)
	}
	del := motion.NewDelete(s1, 1)
	moved := s1
	moved.Ref = 1
	moved.Pos = geom.Point{X: 9, Y: 9}
	ins := motion.NewInsert(moved)
	if err := w.Write(FromState(KindDelete, del.State, del.At)); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(FromState(KindInsert, ins.State, ins.At)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	var srv mockServer
	n, err := Replay(&buf, &srv)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("Replay processed %d records, want 5", n)
	}
	if len(srv.loaded) != 2 || srv.loaded[0] != s1 || srv.loaded[1] != s2 {
		t.Fatalf("loaded states mismatch: %+v", srv.loaded)
	}
	if len(srv.ticks) != 2 || srv.ticks[0] != 0 || srv.ticks[1] != 1 {
		t.Fatalf("ticks mismatch: %v (expect initial flush at 0 then tick 1)", srv.ticks)
	}
	final := srv.updates[len(srv.updates)-1]
	if len(final) != 2 || final[0] != del || final[1] != ins {
		t.Fatalf("updates mismatch: %+v", final)
	}
}

func TestReplayMalformed(t *testing.T) {
	if _, err := Replay(strings.NewReader("{not json"), &mockServer{}); err == nil {
		t.Error("malformed JSON must fail")
	}
	if _, err := Replay(strings.NewReader(`{"kind":"banana"}`), &mockServer{}); err == nil {
		t.Error("unknown kind must fail")
	}
}

func TestRecordUpdateKindGuard(t *testing.T) {
	if _, err := (Record{Kind: KindState}).Update(); err == nil {
		t.Error("state record must not convert to update")
	}
	u, err := (Record{Kind: KindInsert, Tick: 7, ID: 1}).Update()
	if err != nil {
		t.Fatal(err)
	}
	if u.Kind != motion.Insert || u.At != 7 {
		t.Errorf("update mismatch: %+v", u)
	}
}

func TestReplayEmptyAndBlankLines(t *testing.T) {
	var srv mockServer
	n, err := Replay(strings.NewReader("\n\n"), &srv)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("processed %d records from blank input", n)
	}
	if len(srv.ticks) != 1 {
		t.Fatalf("expected the final flush tick, got %v", srv.ticks)
	}
}
