// Package wire defines the JSON-lines workload interchange format shared by
// the pdrgen and pdrquery commands: initial object states, tick markers, and
// insert/delete location updates, one record per line.
package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"pdr/internal/geom"
	"pdr/internal/motion"
)

// Kind values for Record.Kind.
const (
	KindState  = "state"
	KindTick   = "tick"
	KindInsert = "insert"
	KindDelete = "delete"
)

// Record is one line of a workload file.
type Record struct {
	Kind string  `json:"kind"`
	Tick int64   `json:"tick"`
	ID   uint64  `json:"id,omitempty"`
	X    float64 `json:"x,omitempty"`
	Y    float64 `json:"y,omitempty"`
	VX   float64 `json:"vx,omitempty"`
	VY   float64 `json:"vy,omitempty"`
	Ref  int64   `json:"ref,omitempty"`
}

// FromState builds a record of the given kind from a motion state.
func FromState(kind string, s motion.State, at motion.Tick) Record {
	return Record{
		Kind: kind, Tick: int64(at), ID: uint64(s.ID),
		X: s.Pos.X, Y: s.Pos.Y, VX: s.Vel.X, VY: s.Vel.Y, Ref: int64(s.Ref),
	}
}

// State reconstructs the motion state carried by the record.
func (r Record) State() motion.State {
	return motion.State{
		ID:  motion.ObjectID(r.ID),
		Pos: geom.Point{X: r.X, Y: r.Y},
		Vel: geom.Vec{X: r.VX, Y: r.VY},
		Ref: motion.Tick(r.Ref),
	}
}

// Update converts an insert/delete record to an update.
func (r Record) Update() (motion.Update, error) {
	switch r.Kind {
	case KindInsert:
		return motion.Update{Kind: motion.Insert, State: r.State(), At: motion.Tick(r.Tick)}, nil
	case KindDelete:
		return motion.Update{Kind: motion.Delete, State: r.State(), At: motion.Tick(r.Tick)}, nil
	default:
		return motion.Update{}, fmt.Errorf("wire: record kind %q is not an update", r.Kind)
	}
}

// Writer streams records as JSON lines.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriterSize(w, 1<<20)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one record.
func (w *Writer) Write(r Record) error { return w.enc.Encode(r) }

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Server is the subset of the PDR engine a replay drives (satisfied by
// *core.Server).
type Server interface {
	Load(states []motion.State) error
	Tick(now motion.Tick, updates []motion.Update) error
}

// Replay reads a workload stream and drives srv: initial states are bulk
// loaded, then each tick's updates are applied. It returns the number of
// records processed.
func Replay(r io.Reader, srv Server) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var (
		states  []motion.State
		pending []motion.Update
		now     motion.Tick
		loaded  bool
		count   int
	)
	flush := func() error {
		if !loaded {
			if err := srv.Load(states); err != nil {
				return err
			}
			loaded = true
		}
		if err := srv.Tick(now, pending); err != nil {
			return err
		}
		pending = pending[:0]
		return nil
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return count, fmt.Errorf("wire: line %d: %w", count+1, err)
		}
		count++
		switch rec.Kind {
		case KindState:
			states = append(states, rec.State())
		case KindTick:
			if err := flush(); err != nil {
				return count, err
			}
			now = motion.Tick(rec.Tick)
		case KindInsert, KindDelete:
			u, err := rec.Update()
			if err != nil {
				return count, err
			}
			pending = append(pending, u)
		default:
			return count, fmt.Errorf("wire: unknown record kind %q", rec.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return count, err
	}
	if err := flush(); err != nil {
		return count, err
	}
	return count, nil
}
