package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pdr/internal/cache"
	"pdr/internal/core"
	"pdr/internal/datagen"
	"pdr/internal/motion"
	"pdr/internal/wire"
)

func testService(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.HistM = 50
	cfg.L = 60
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	return svc, ts
}

// advanceTicks advances the generator n ticks, posting each batch of
// updates so the server's clock follows.
func advanceTicks(t *testing.T, ts *httptest.Server, g *datagen.Generator, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		ups := g.Advance()
		var ur UpdatesRequest
		ur.Now = g.Now()
		for _, u := range ups {
			kind := wire.KindInsert
			if u.Kind == motion.Delete {
				kind = wire.KindDelete
			}
			ur.Updates = append(ur.Updates, wire.FromState(kind, u.State, u.At))
		}
		body, _ := json.Marshal(ur)
		resp, err := http.Post(ts.URL+"/v1/updates", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("updates status %d", resp.StatusCode)
		}
	}
}

func loadWorkload(t *testing.T, ts *httptest.Server, n int) *datagen.Generator {
	t.Helper()
	gcfg := datagen.DefaultConfig(n)
	gcfg.Seed = 7
	g, err := datagen.New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	var req LoadRequest
	for _, s := range g.InitialStates() {
		req.States = append(req.States, wire.FromState(wire.KindState, s, 0))
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/load", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load status %d", resp.StatusCode)
	}
	var lr LoadResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	if lr.Loaded != n {
		t.Fatalf("loaded %d, want %d", lr.Loaded, n)
	}
	return g
}

func TestHealthz(t *testing.T) {
	_, ts := testService(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestLoadUpdatesQueryFlow(t *testing.T) {
	_, ts := testService(t)
	g := loadWorkload(t, ts, 2000)

	// Apply one tick of updates.
	ups := g.Advance()
	var ur UpdatesRequest
	ur.Now = g.Now()
	for _, u := range ups {
		kind := wire.KindInsert
		if u.Kind == motion.Delete {
			kind = wire.KindDelete
		}
		ur.Updates = append(ur.Updates, wire.FromState(kind, u.State, u.At))
	}
	body, _ := json.Marshal(ur)
	resp, err := http.Post(ts.URL+"/v1/updates", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("updates status %d", resp.StatusCode)
	}
	var urr UpdatesResponse
	if err := json.NewDecoder(resp.Body).Decode(&urr); err != nil {
		t.Fatal(err)
	}
	if urr.Objects != 2000 || urr.Now != g.Now() {
		t.Fatalf("updates response %+v", urr)
	}

	// Query via FR with outline rings.
	qresp, err := http.Get(ts.URL + "/v1/query?method=fr&varrho=2&l=60&at=now%2B10&outline=1")
	if err != nil {
		t.Fatal(err)
	}
	defer qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", qresp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(qresp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Method != "FR" {
		t.Errorf("method %q", qr.Method)
	}
	if len(qr.Rects) == 0 || qr.Area <= 0 {
		t.Errorf("empty answer: %d rects, area %g", len(qr.Rects), qr.Area)
	}
	if len(qr.Rings) == 0 {
		t.Error("outline=1 but no rings returned")
	}
}

func TestIntervalQueryOverHTTP(t *testing.T) {
	_, ts := testService(t)
	loadWorkload(t, ts, 1000)
	resp, err := http.Get(ts.URL + "/v1/query?method=pa&varrho=1&l=60&at=now&until=now%2B3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("interval query status %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Until == nil || *qr.Until != 3 {
		t.Errorf("until = %v, want 3", qr.Until)
	}
}

func TestQueryValidationErrors(t *testing.T) {
	_, ts := testService(t)
	loadWorkload(t, ts, 100)
	cases := []struct {
		url  string
		code int
	}{
		{"/v1/query?method=banana&l=60&varrho=1", http.StatusBadRequest},
		{"/v1/query?method=fr&l=abc&varrho=1", http.StatusBadRequest},
		{"/v1/query?method=fr&l=60", http.StatusBadRequest},         // no rho
		{"/v1/query?method=fr&l=60&rho=xyz", http.StatusBadRequest}, // bad rho
		{"/v1/query?method=fr&l=60&varrho=1&at=later", http.StatusBadRequest},
		{"/v1/query?method=fr&l=60&varrho=1&at=9999", http.StatusBadRequest},  // beyond horizon
		{"/v1/query?method=fr&l=60&varrho=1&at=now-3", http.StatusBadRequest}, // past: /v1/past territory
		{"/v1/query?method=fr&l=60&varrho=1&until=now%2B9999", http.StatusBadRequest},
		{"/v1/query?method=pa&l=45&varrho=1", http.StatusUnprocessableEntity}, // PA wrong l
	}
	for _, c := range cases {
		resp, err := http.Get(ts.URL + c.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.code {
			t.Errorf("%s: status %d, want %d", c.url, resp.StatusCode, c.code)
		}
	}
}

func TestUpdatesValidationErrors(t *testing.T) {
	_, ts := testService(t)
	loadWorkload(t, ts, 100)
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/updates", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", resp.StatusCode)
	}
	// A "state" record is not an update.
	body, _ := json.Marshal(UpdatesRequest{Now: 1, Updates: []wire.Record{{Kind: wire.KindState}}})
	resp, err = http.Post(ts.URL+"/v1/updates", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("state-as-update: status %d", resp.StatusCode)
	}
	// Deleting an unknown object conflicts.
	body, _ = json.Marshal(UpdatesRequest{Now: 1, Updates: []wire.Record{
		{Kind: wire.KindDelete, ID: 999999, Tick: 1},
	}})
	resp, err = http.Post(ts.URL+"/v1/updates", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("unknown delete: status %d", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := testService(t)
	loadWorkload(t, ts, 500)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Objects != 500 {
		t.Errorf("stats objects = %d, want 500", sr.Objects)
	}
	if sr.HistogramBytes == 0 || sr.SurfaceBytes == 0 || sr.IndexPages == 0 {
		t.Errorf("stats missing structure sizes: %+v", sr)
	}
	if sr.UptimeHorizon != 90 {
		t.Errorf("horizon = %d, want 90", sr.UptimeHorizon)
	}
}

func TestContoursEndpoint(t *testing.T) {
	_, ts := testService(t)
	loadWorkload(t, ts, 3000)
	resp, err := http.Get(ts.URL + "/v1/contours?level=0.0001&res=48")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("contours status %d", resp.StatusCode)
	}
	var cr ContourResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Segments) == 0 {
		t.Error("no contour segments at a low level over 3000 objects")
	}
	// Bad parameters.
	for _, u := range []string{
		"/v1/contours",                 // missing level
		"/v1/contours?level=1&res=x",   // bad res
		"/v1/contours?level=1&res=1",   // res too small
		"/v1/contours?level=1&at=9999", // out of window
	} {
		resp, err := http.Get(ts.URL + u)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("%s unexpectedly succeeded", u)
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	// The mutex must keep concurrent readers and writers safe; exercised
	// with parallel HTTP traffic.
	_, ts := testService(t)
	g := loadWorkload(t, ts, 1000)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				resp, err := http.Get(fmt.Sprintf("%s/v1/query?method=pa&varrho=%d&l=60", ts.URL, 1+w%3))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("query status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	// Concurrent writer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			ups := g.Advance()
			var ur UpdatesRequest
			ur.Now = g.Now()
			for _, u := range ups {
				kind := wire.KindInsert
				if u.Kind == motion.Delete {
					kind = wire.KindDelete
				}
				ur.Updates = append(ur.Updates, wire.FromState(kind, u.State, u.At))
			}
			body, _ := json.Marshal(ur)
			resp, err := http.Post(ts.URL+"/v1/updates", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("updates status %d", resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestWatchLifecycle(t *testing.T) {
	_, ts := testService(t)
	g := loadWorkload(t, ts, 1500)

	// Register a standing query.
	body, _ := json.Marshal(WatchRequest{Varrho: 2, L: 60, Ahead: 5, Every: 1, Method: "pa"})
	resp, err := http.Post(ts.URL+"/v1/watch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch status %d", resp.StatusCode)
	}
	var wr WatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		t.Fatal(err)
	}
	if wr.ID == 0 {
		t.Fatal("watch returned zero id")
	}

	// The next update tick carries an event (first evaluation).
	ups := g.Advance()
	var ur UpdatesRequest
	ur.Now = g.Now()
	for _, u := range ups {
		kind := wire.KindInsert
		if u.Kind == motion.Delete {
			kind = wire.KindDelete
		}
		ur.Updates = append(ur.Updates, wire.FromState(kind, u.State, u.At))
	}
	body, _ = json.Marshal(ur)
	resp2, err := http.Post(ts.URL+"/v1/updates", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var urr UpdatesResponse
	if err := json.NewDecoder(resp2.Body).Decode(&urr); err != nil {
		t.Fatal(err)
	}
	if len(urr.Events) != 1 {
		t.Fatalf("got %d events, want 1", len(urr.Events))
	}
	ev := urr.Events[0]
	if ev.SubID != wr.ID || !ev.First {
		t.Errorf("unexpected event %+v", ev)
	}
	if ev.Target != ev.At+5 {
		t.Errorf("event target %d, want at+5=%d", ev.Target, ev.At+5)
	}

	// Unregister and confirm no more events.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/watch/%d", ts.URL, wr.ID), nil)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNoContent {
		t.Fatalf("unwatch status %d", resp3.StatusCode)
	}
	// Double delete -> 404.
	resp4, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusNotFound {
		t.Fatalf("double unwatch status %d", resp4.StatusCode)
	}
}

func TestWatchValidation(t *testing.T) {
	_, ts := testService(t)
	loadWorkload(t, ts, 100)
	for _, body := range []string{
		`{`,                                     // malformed
		`{"l":60,"varrho":1,"method":"banana"}`, // bad method
		`{"l":0,"varrho":1,"method":"pa"}`,      // bad l
		`{"l":60,"varrho":1,"ahead":99,"method":"pa"}`, // ahead > W
	} {
		resp, err := http.Post(ts.URL+"/v1/watch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("watch body %q unexpectedly succeeded", body)
		}
	}
	// Bad id on delete.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/watch/zzz", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status %d", resp.StatusCode)
	}
}

func TestPastEndpoint(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.HistM = 50
	cfg.L = 60
	cfg.KeepHistory = true
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	defer ts.Close()
	g := loadWorkload(t, ts, 1500)
	// Advance a few ticks so there is a past to query.
	advanceTicks(t, ts, g, 5)
	resp, err := http.Get(ts.URL + "/v1/past?varrho=2&l=60&at=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("past status %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Method != "past-exact" || qr.At != 2 {
		t.Errorf("past response: %+v", qr)
	}
	// Validation: a future tick is a clear 400 (not an engine 422); a
	// genuinely past tick on a non-history server still 422s.
	r2, _ := http.Get(ts.URL + "/v1/past?varrho=2&l=60&at=9999")
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("future past query status %d", r2.StatusCode)
	}
	// The now-K form resolves against the advanced clock.
	r2b, err := http.Get(ts.URL + "/v1/past?varrho=2&l=60&at=now-3")
	if err != nil {
		t.Fatal(err)
	}
	defer r2b.Body.Close()
	if r2b.StatusCode != http.StatusOK {
		t.Errorf("now-3 past query status %d", r2b.StatusCode)
	}
	var qr2 QueryResponse
	if err := json.NewDecoder(r2b.Body).Decode(&qr2); err != nil {
		t.Fatal(err)
	}
	if qr2.At != g.Now()-3 {
		t.Errorf("now-3 resolved to %d, want %d", qr2.At, g.Now()-3)
	}
	_, ts2 := testService(t) // history disabled
	g2 := loadWorkload(t, ts2, 50)
	advanceTicks(t, ts2, g2, 1)
	r3, _ := http.Get(ts2.URL + "/v1/past?varrho=2&l=60&at=0")
	r3.Body.Close()
	if r3.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("history-disabled past query status %d", r3.StatusCode)
	}
	// Bad params.
	r4, _ := http.Get(ts.URL + "/v1/past?varrho=2&l=60&at=now")
	r4.Body.Close()
	if r4.StatusCode != http.StatusBadRequest {
		t.Errorf("at=now status %d", r4.StatusCode)
	}
	// A pre-history tick is a clear 400, not an engine error — even with a
	// clock so fresh that now-K underflows tick 0.
	for _, at := range []string{"-1", "now-9999"} {
		r5, _ := http.Get(ts.URL + "/v1/past?varrho=2&l=60&at=" + at)
		r5.Body.Close()
		if r5.StatusCode != http.StatusBadRequest {
			t.Errorf("at=%s status %d, want 400", at, r5.StatusCode)
		}
	}
}

// cachedTestService is testService with the result cache enabled.
func cachedTestService(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.HistM = 50
	cfg.L = 60
	cfg.CacheBytes = 16 << 20
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	return svc, ts
}

// TestQueryCacheOverHTTP drives the full loop: the second identical query
// is served from the cache (cached=true, zero IOs, identical answer), the
// stats endpoint reports the counters, and /metrics exposes the same
// instruments under pdr_cache_*.
func TestQueryCacheOverHTTP(t *testing.T) {
	svc, ts := cachedTestService(t)
	loadWorkload(t, ts, 1500)

	url := ts.URL + "/v1/query?method=fr&varrho=3&l=60&at=now%2B5"
	fetch := func() QueryResponse {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status %d", resp.StatusCode)
		}
		var qr QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		return qr
	}
	cold := fetch()
	if cold.Cached {
		t.Error("first query claims cached")
	}
	warm := fetch()
	if !warm.Cached {
		t.Error("second identical query not served from cache")
	}
	if warm.IOs != 0 {
		t.Errorf("cached query charged %d IOs", warm.IOs)
	}
	if len(warm.Rects) != len(cold.Rects) || warm.Area != cold.Area {
		t.Errorf("cached answer differs: %d rects area %g vs %d rects area %g",
			len(warm.Rects), warm.Area, len(cold.Rects), cold.Area)
	}
	if cold.WallMicros == 0 {
		t.Error("wallMicros missing from the query response")
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.CacheMisses < 1 || sr.CacheHits < 1 {
		t.Errorf("stats cache counters = hits %d misses %d, want both >= 1", sr.CacheHits, sr.CacheMisses)
	}
	if sr.CacheHitRatio <= 0 {
		t.Errorf("cacheHitRatio = %g, want > 0", sr.CacheHitRatio)
	}
	if sr.CacheBytes <= 0 || sr.CacheEntries <= 0 {
		t.Errorf("cache residency = %d bytes / %d entries, want > 0", sr.CacheBytes, sr.CacheEntries)
	}

	// /metrics exposes the same instruments, by the stats' values.
	body := getMetricsBody(t, ts)
	cst := svc.Engine().CacheStats()
	for metric, want := range map[string]int64{
		"pdr_cache_hits_total":                cst.Hits,
		"pdr_cache_misses_total":              cst.Misses,
		"pdr_cache_singleflight_shared_total": cst.Shared,
		"pdr_cache_entries":                   cst.Entries,
	} {
		if !strings.Contains(body, fmt.Sprintf("%s %d", metric, want)) {
			t.Errorf("/metrics missing %q with value %d", metric, want)
		}
	}
}

// TestSingleflightSharedMetric pins the shared-flight counter's journey to
// /metrics. A real query's flight can settle before any concurrent
// duplicate registers on a small host (the engine-level concurrency stress
// is core's TestCacheSingleflightStress), so this test constructs the
// shared flight deterministically against the service's wired cache: the
// winner blocks in compute until every loser is observably waiting.
func TestSingleflightSharedMetric(t *testing.T) {
	svc, ts := cachedTestService(t)
	qc := svc.Engine().Cache()

	const losers = 3
	k := cache.Key{Epoch: 999, At: 42, Rho: 0.5, L: 60}
	entered := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, outcome, err := qc.Do(k, func() (*cache.Entry, error) {
			close(entered)
			<-release
			return &cache.Entry{CPU: time.Millisecond}, nil
		})
		if err != nil || outcome != cache.Computed {
			t.Errorf("winner: outcome %v, err %v", outcome, err)
		}
	}()
	<-entered
	for i := 0; i < losers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, outcome, err := qc.Do(k, func() (*cache.Entry, error) {
				return nil, fmt.Errorf("loser must not evaluate")
			})
			if err != nil || outcome != cache.Shared {
				t.Errorf("loser: outcome %v, err %v", outcome, err)
			}
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for qc.Stats().Waiting < losers {
		if time.Now().After(deadline) {
			t.Fatal("losers never blocked on the winner's flight")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	cst := svc.Engine().CacheStats()
	if cst.Shared != losers {
		t.Fatalf("shared = %d, want %d", cst.Shared, losers)
	}
	body := getMetricsBody(t, ts)
	if !strings.Contains(body, fmt.Sprintf("pdr_cache_singleflight_shared_total %d", cst.Shared)) {
		t.Errorf("/metrics does not report %d shared flights", cst.Shared)
	}
}

func getMetricsBody(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
