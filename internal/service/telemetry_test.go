package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pdr/internal/core"
	"pdr/internal/motion"
)

// syncBuffer lets the slow-query log write from handler goroutines while
// the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// fetchMetrics scrapes /metrics and returns the body.
func fetchMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts the value of an exact sample line, -1 if absent.
func metricValue(body, sample string) string {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, sample+" "); ok {
			return rest
		}
	}
	return ""
}

// metricEventually re-scrapes until sample reads want or the deadline
// passes, returning the last value seen. The HTTP middleware records a
// request after the response body has already reached the client, so a
// scrape issued immediately after a call can land in between; the request
// instruments are eventually consistent with the client's view, never
// synchronized to it.
func metricEventually(t *testing.T, ts *httptest.Server, sample, want string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		v := metricValue(fetchMetrics(t, ts), sample)
		if v == want || time.Now().After(deadline) {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMetricsEndpoint is the acceptance path: /metrics serves Prometheus
// text, and the per-method latency histograms and filter counters move
// after a /v1/query call.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testService(t)
	loadWorkload(t, ts, 1000)

	before := fetchMetrics(t, ts)
	if v := metricValue(before, `pdr_engine_queries_total{method="FR"}`); v != "0" {
		t.Errorf("pre-query FR count = %q, want 0", v)
	}

	resp, err := http.Get(ts.URL + "/v1/query?method=fr&varrho=2&l=60")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}

	after := fetchMetrics(t, ts)
	if v := metricValue(after, `pdr_engine_queries_total{method="FR"}`); v != "1" {
		t.Errorf("post-query FR count = %q, want 1", v)
	}
	if v := metricValue(after, `pdr_engine_query_seconds_count{method="FR"}`); v != "1" {
		t.Errorf("FR latency observations = %q, want 1", v)
	}
	// The filter step classified cells: at least one counter moved.
	moved := false
	for _, mark := range []string{"accepted", "rejected", "candidate"} {
		if v := metricValue(after, `pdr_engine_filter_cells_total{mark="`+mark+`"}`); v != "0" && v != "" {
			moved = true
		}
	}
	if !moved {
		t.Error("no filter-cell counter moved after an FR query")
	}
	// HTTP middleware saw the query route (eventually: it records after the
	// response is already on the wire).
	if v := metricEventually(t, ts, `pdr_http_requests_total{route="/v1/query",status="200"}`, "1"); v != "1" {
		t.Errorf("http request counter = %q, want 1", v)
	}
	if v := metricEventually(t, ts, `pdr_http_request_seconds_count{route="/v1/query"}`, "1"); v != "1" {
		t.Errorf("http latency observations = %q, want 1", v)
	}
	// Pool instruments are present (FR refinement touches the index).
	if v := metricValue(after, "pdr_pool_hit_ratio"); v == "" {
		t.Error("pdr_pool_hit_ratio missing from exposition")
	}
}

func TestMetricsAndStatsAgree(t *testing.T) {
	svc, ts := testService(t)
	loadWorkload(t, ts, 500)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/query?method=dh-opt&varrho=2&l=60")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// Register a watch so the subscription gauge is non-zero.
	body, _ := json.Marshal(WatchRequest{Varrho: 2, L: 60, Every: 1, Method: "dh-opt"})
	resp, err := http.Post(ts.URL+"/v1/watch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	sr := struct {
		Subscriptions int              `json:"subscriptions"`
		QueriesServed map[string]int64 `json:"queriesServed"`
		PoolHitRatio  float64          `json:"poolHitRatio"`
	}{}
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	if err := json.NewDecoder(statsResp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Subscriptions != 1 {
		t.Errorf("stats subscriptions = %d, want 1", sr.Subscriptions)
	}
	if sr.QueriesServed["DH-opt"] != 3 {
		t.Errorf("stats queriesServed[DH-opt] = %d, want 3", sr.QueriesServed["DH-opt"])
	}
	if sr.PoolHitRatio < 0 || sr.PoolHitRatio > 1 {
		t.Errorf("pool hit ratio %g outside [0,1]", sr.PoolHitRatio)
	}
	body2 := fetchMetrics(t, ts)
	if v := metricValue(body2, `pdr_engine_queries_total{method="DH-opt"}`); v != "3" {
		t.Errorf("metrics DH-opt count = %q, want 3 (stats said %d)", v, sr.QueriesServed["DH-opt"])
	}
	if v := metricValue(body2, "pdr_monitor_subscriptions"); v != "1" {
		t.Errorf("metrics subscriptions = %q, want 1", v)
	}
	_ = svc
}

func TestSlowQueryLog(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.HistM = 50
	cfg.L = 60
	var log syncBuffer
	// A zero-ish threshold logs every request.
	svc, err := New(cfg, WithSlowQueryLog(time.Nanosecond, &log))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	defer ts.Close()
	loadWorkload(t, ts, 500)

	resp, err := http.Get(ts.URL + "/v1/query?method=fr&varrho=2&l=60")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var queryLine *slowQueryLine
	sc := bufio.NewScanner(strings.NewReader(log.String()))
	for sc.Scan() {
		var line slowQueryLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad slow-log line %q: %v", sc.Text(), err)
		}
		if line.Route == "/v1/query" {
			queryLine = &line
		}
	}
	if queryLine == nil {
		t.Fatalf("no /v1/query line in slow log:\n%s", log.String())
	}
	if queryLine.Status != http.StatusOK || queryLine.DurationMicros < 0 {
		t.Errorf("slow log line: %+v", queryLine)
	}
	if queryLine.Query == nil {
		t.Fatal("slow log line missing engine query detail")
	}
	if queryLine.Query.Method != "FR" || queryLine.Query.L != 60 {
		t.Errorf("slow log query detail: %+v", queryLine.Query)
	}
	phases := make([]string, 0, len(queryLine.Query.Phases))
	for _, p := range queryLine.Query.Phases {
		phases = append(phases, p.Phase)
	}
	if got := strings.Join(phases, ","); got != "filter,refine,union" {
		t.Errorf("trace phases = %s, want filter,refine,union", got)
	}
	// The slow-query counter is exposed.
	if v := metricValue(fetchMetrics(t, ts), "pdr_http_slow_queries_total"); v == "" || v == "0" {
		t.Errorf("pdr_http_slow_queries_total = %q, want > 0", v)
	}
}

// TestStatusRecorderFlush pins that the middleware's wrapper forwards
// Flush, so a streaming handler registered via handle() keeps working.
func TestStatusRecorderFlush(t *testing.T) {
	rec := httptest.NewRecorder()
	sr := &statusRecorder{ResponseWriter: rec, status: http.StatusOK}
	var _ http.Flusher = sr
	sr.Flush()
	if !rec.Flushed {
		t.Error("Flush not delegated to the underlying writer")
	}
	// A non-Flusher underlying writer must not panic.
	(&statusRecorder{ResponseWriter: nopResponseWriter{}}).Flush()
}

// nopResponseWriter is a ResponseWriter without optional interfaces.
type nopResponseWriter struct{}

func (nopResponseWriter) Header() http.Header         { return http.Header{} }
func (nopResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (nopResponseWriter) WriteHeader(int)             {}

func TestParseTick(t *testing.T) {
	const now, horizon = 100, 90
	cases := []struct {
		in      string
		want    motion.Tick
		wantErr bool
	}{
		{"", now, false},
		{"now", now, false},
		{"now+0", now, false},
		{"now+90", now + 90, false},
		{"now+91", 0, true},  // beyond horizon
		{"now+-3", 0, true},  // negative K
		{"now-5", 0, true},   // past: /v1/past territory
		{"now+abc", 0, true}, // malformed K
		{"100", 100, false},
		{"190", 190, false},
		{"191", 0, true}, // beyond horizon
		{"99", 0, true},  // precedes now
		{"later", 0, true},
		{"12.5", 0, true},
	}
	for _, c := range cases {
		got, err := parseTick(c.in, now, horizon)
		if (err != nil) != c.wantErr {
			t.Errorf("parseTick(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("parseTick(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParsePastTick(t *testing.T) {
	const now = 100
	cases := []struct {
		in      string
		want    motion.Tick
		wantErr bool
	}{
		{"now-1", 99, false},
		{"now-100", 0, false},
		{"now-101", 0, true}, // underflows past the start of history
		{"now-0", 0, true},   // not in the past
		{"now--3", 0, true},
		{"50", 50, false},
		{"-1", 0, true},  // before the start of history
		{"100", 0, true}, // == now
		{"101", 0, true}, // future
		{"now", 0, true},
		{"now+5", 0, true},
		{"", 0, true},
	}
	for _, c := range cases {
		got, err := parsePastTick(c.in, now)
		if (err != nil) != c.wantErr {
			t.Errorf("parsePastTick(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("parsePastTick(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseMethodEdgeCases(t *testing.T) {
	cases := []struct {
		in      string
		want    core.Method
		wantErr bool
	}{
		{"", core.FR, false},
		{"fr", core.FR, false},
		{"FR", core.FR, false}, // case-insensitive
		{"Pa", core.PA, false},
		{"dh-opt", core.DHOptimistic, false},
		{"DH-PESS", core.DHPessimistic, false},
		{"bf", core.BruteForce, false},
		{"dh", 0, true},
		{"brute", 0, true},
		{" fr", 0, true}, // no trimming: the URL layer already decoded
	}
	for _, c := range cases {
		got, err := parseMethod(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("parseMethod(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("parseMethod(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
