package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"pdr/internal/core"
	"pdr/internal/motion"
	"pdr/internal/wire"
)

// TestRaceUpdatesQueryStats drives one Service with concurrent update
// traffic, snapshot queries and stats polls. It exists for `go test -race`
// (scripts/check.sh runs it there): the handlers share srv/mon behind
// Service.mu, and this workload makes the detector see every pairing of the
// write path against both read paths. The updates goroutine is the single
// clock owner, so Now stays monotonic; queries and stats race freely
// against it.
func TestRaceUpdatesQueryStats(t *testing.T) {
	_, ts := testService(t)
	g := loadWorkload(t, ts, 800)

	const (
		queryWorkers = 4
		statsWorkers = 2
		iters        = 6
	)
	var wg sync.WaitGroup
	errs := make(chan error, queryWorkers+statsWorkers+1)

	// Writer: advance the clock and push location updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			ups := g.Advance()
			var ur UpdatesRequest
			ur.Now = g.Now()
			for _, u := range ups {
				kind := wire.KindInsert
				if u.Kind == motion.Delete {
					kind = wire.KindDelete
				}
				ur.Updates = append(ur.Updates, wire.FromState(kind, u.State, u.At))
			}
			body, _ := json.Marshal(ur)
			resp, err := http.Post(ts.URL+"/v1/updates", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("updates status %d", resp.StatusCode)
				return
			}
		}
	}()

	// Readers: snapshot queries with both cheap methods.
	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			method := "pa"
			if w%2 == 1 {
				method = "dh"
			}
			for i := 0; i < iters; i++ {
				resp, err := http.Get(fmt.Sprintf("%s/v1/query?method=%s&varrho=%d&l=60", ts.URL, method, 1+w%3))
				if err != nil {
					errs <- err
					return
				}
				var qr QueryResponse
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("query decode: %w", err)
					return
				}
			}
		}(w)
	}

	// Readers: stats polls.
	for w := 0; w < statsWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Get(ts.URL + "/v1/stats")
				if err != nil {
					errs <- err
					return
				}
				var sr StatsResponse
				err = json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("stats decode: %w", err)
					return
				}
				if sr.Objects == 0 {
					errs <- fmt.Errorf("stats reported zero objects mid-traffic")
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRaceConcurrentIntervalQueries hammers the parallel interval path from
// several HTTP clients at once: every handler holds the service read lock
// simultaneously, and each interval query fans its per-timestamp snapshots
// out to the engine's worker pool. All clients must get the same answer —
// the engine is quiescent (no updates), so any divergence would mean the
// parallel merge or the shared scratch reuse is racy.
func TestRaceConcurrentIntervalQueries(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.HistM = 50
	cfg.L = 60
	cfg.Workers = 4
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	loadWorkload(t, ts, 800)

	const clients = 6
	answers := make([]QueryResponse, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/query?method=fr&varrho=3&l=60&at=now&until=now%2B4")
			if err != nil {
				errs[c] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[c] = fmt.Errorf("interval query status %d", resp.StatusCode)
				return
			}
			errs[c] = json.NewDecoder(resp.Body).Decode(&answers[c])
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	for c := 1; c < clients; c++ {
		if answers[c].Area != answers[0].Area || len(answers[c].Rects) != len(answers[0].Rects) {
			t.Errorf("client %d answer diverged: area %g (%d rects) vs %g (%d rects)",
				c, answers[c].Area, len(answers[c].Rects), answers[0].Area, len(answers[0].Rects))
		}
	}
}
