package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"pdr/internal/motion"
	"pdr/internal/wire"
)

// TestRaceUpdatesQueryStats drives one Service with concurrent update
// traffic, snapshot queries and stats polls. It exists for `go test -race`
// (scripts/check.sh runs it there): the handlers share srv/mon behind
// Service.mu, and this workload makes the detector see every pairing of the
// write path against both read paths. The updates goroutine is the single
// clock owner, so Now stays monotonic; queries and stats race freely
// against it.
func TestRaceUpdatesQueryStats(t *testing.T) {
	_, ts := testService(t)
	g := loadWorkload(t, ts, 800)

	const (
		queryWorkers = 4
		statsWorkers = 2
		iters        = 6
	)
	var wg sync.WaitGroup
	errs := make(chan error, queryWorkers+statsWorkers+1)

	// Writer: advance the clock and push location updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			ups := g.Advance()
			var ur UpdatesRequest
			ur.Now = g.Now()
			for _, u := range ups {
				kind := wire.KindInsert
				if u.Kind == motion.Delete {
					kind = wire.KindDelete
				}
				ur.Updates = append(ur.Updates, wire.FromState(kind, u.State, u.At))
			}
			body, _ := json.Marshal(ur)
			resp, err := http.Post(ts.URL+"/v1/updates", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("updates status %d", resp.StatusCode)
				return
			}
		}
	}()

	// Readers: snapshot queries with both cheap methods.
	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			method := "pa"
			if w%2 == 1 {
				method = "dh"
			}
			for i := 0; i < iters; i++ {
				resp, err := http.Get(fmt.Sprintf("%s/v1/query?method=%s&varrho=%d&l=60", ts.URL, method, 1+w%3))
				if err != nil {
					errs <- err
					return
				}
				var qr QueryResponse
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("query decode: %w", err)
					return
				}
			}
		}(w)
	}

	// Readers: stats polls.
	for w := 0; w < statsWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Get(ts.URL + "/v1/stats")
				if err != nil {
					errs <- err
					return
				}
				var sr StatsResponse
				err = json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("stats decode: %w", err)
					return
				}
				if sr.Objects == 0 {
					errs <- fmt.Errorf("stats reported zero objects mid-traffic")
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
