package service

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"pdr/internal/telemetry"
	"pdr/internal/tracestore"
)

// tracer decides per request whether to trace (probabilistic head
// sampling) and files completed traces into the bounded store. All state
// is atomic or internally locked — the middleware uses it without any
// service-level lock.
type tracer struct {
	store   *tracestore.Store
	rate    float64 // head-sampling probability in [0, 1]
	seq     atomic.Uint64
	sampled *telemetry.Counter
	dropped *telemetry.Counter
}

// maybeStart returns a new trace for this request, or nil when head
// sampling decides against. The decision is a hash of an atomic sequence
// number — deterministic for a given request ordinal, lock-free, and free
// of the global math/rand state (pdrvet's randseed rule).
func (t *tracer) maybeStart(route string) *telemetry.Trace {
	if !t.admit() {
		t.dropped.Inc()
		return nil
	}
	return telemetry.NewTrace(route)
}

// admit implements the sampling decision: splitmix64 of the request
// ordinal scaled into [0, 1), admitted when below the configured rate.
func (t *tracer) admit() bool {
	if t.rate >= 1 {
		return true
	}
	if t.rate <= 0 {
		return false
	}
	x := t.seq.Add(1)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x>>11)/(1<<53) < t.rate
}

// finish files a completed trace. The span tree must be fully ended —
// store readers render it concurrently.
func (t *tracer) finish(tr *telemetry.Trace, route string, r *http.Request, status int, elapsed time.Duration) {
	t.store.Add(&tracestore.Record{
		ID:       tr.ID(),
		Time:     time.Now(),
		Route:    route,
		Method:   r.Method,
		URL:      r.URL.String(),
		Status:   status,
		Duration: elapsed,
		Root:     tr.Root(),
	})
	t.sampled.Inc()
}

// TraceSummaryJSON is one entry of the GET /debug/traces listing.
type TraceSummaryJSON struct {
	ID             string `json:"id"`
	Time           string `json:"time"`
	Route          string `json:"route"`
	HTTPMethod     string `json:"httpMethod"`
	URL            string `json:"url"`
	Status         int    `json:"status"`
	DurationMicros int64  `json:"durationMicros"`
	Spans          int    `json:"spans"`
}

// TraceListResponse is the body of GET /debug/traces.
type TraceListResponse struct {
	Sampled int64              `json:"sampled"`
	Dropped int64              `json:"dropped"`
	Evicted int64              `json:"evicted"`
	Stored  int                `json:"stored"`
	Traces  []TraceSummaryJSON `json:"traces"`
}

// SpanJSON is one node of a rendered span tree. Start offsets are
// relative to the trace start; the record's time field anchors them to
// the wall clock.
type SpanJSON struct {
	Name           string           `json:"name"`
	StartMicros    int64            `json:"startMicros"`
	DurationMicros int64            `json:"durationMicros"`
	Attrs          []telemetry.Attr `json:"attrs,omitempty"`
	Children       []SpanJSON       `json:"children,omitempty"`
}

// TraceResponse is the body of GET /debug/traces/{id}.
type TraceResponse struct {
	ID             string   `json:"id"`
	Time           string   `json:"time"`
	Route          string   `json:"route"`
	HTTPMethod     string   `json:"httpMethod"`
	URL            string   `json:"url"`
	Status         int      `json:"status"`
	DurationMicros int64    `json:"durationMicros"`
	Root           SpanJSON `json:"root"`
}

func spanJSON(sp *telemetry.Span) SpanJSON {
	out := SpanJSON{
		Name:           sp.Name,
		StartMicros:    sp.Start.Microseconds(),
		DurationMicros: sp.Duration.Microseconds(),
		Attrs:          sp.Attrs,
	}
	if len(sp.Children) > 0 {
		out.Children = make([]SpanJSON, len(sp.Children))
		for i, c := range sp.Children {
			out.Children[i] = spanJSON(c)
		}
	}
	return out
}

func traceSummary(rec *tracestore.Record) TraceSummaryJSON {
	return TraceSummaryJSON{
		ID:             rec.ID.String(),
		Time:           rec.Time.UTC().Format(time.RFC3339Nano),
		Route:          rec.Route,
		HTTPMethod:     rec.Method,
		URL:            rec.URL,
		Status:         rec.Status,
		DurationMicros: rec.Duration.Microseconds(),
		Spans:          rec.Root.CountSpans(),
	}
}

// handleTraces serves GET /debug/traces: recent trace summaries, newest
// first (?slowest=1 lists the slowest-kept reservoir instead, ?limit=N
// bounds the listing, default 50). Registered raw — trace reads are never
// themselves traced or counted as requests.
func (s *Service) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		httpError(w, http.StatusNotFound, "tracing is disabled (trace buffer 0)")
		return
	}
	limit := 50
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	var recs []*tracestore.Record
	if r.URL.Query().Get("slowest") == "1" {
		recs = s.tracer.store.Slowest(limit)
	} else {
		recs = s.tracer.store.Recent(limit)
	}
	out := TraceListResponse{
		Sampled: s.tracer.sampled.Value(),
		Dropped: s.tracer.dropped.Value(),
		Evicted: s.tracer.store.Evictions(),
		Stored:  s.tracer.store.Len(),
		Traces:  make([]TraceSummaryJSON, len(recs)),
	}
	for i, rec := range recs {
		out.Traces[i] = traceSummary(rec)
	}
	writeJSON(w, out)
}

// handleTraceByID serves GET /debug/traces/{id}: the full span tree of
// one retained trace.
func (s *Service) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		httpError(w, http.StatusNotFound, "tracing is disabled (trace buffer 0)")
		return
	}
	id, err := telemetry.ParseTraceID(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rec := s.tracer.store.Get(id)
	if rec == nil {
		httpError(w, http.StatusNotFound, "trace %s is not in the store (never sampled, or evicted)", r.PathValue("id"))
		return
	}
	writeJSON(w, TraceResponse{
		ID:             rec.ID.String(),
		Time:           rec.Time.UTC().Format(time.RFC3339Nano),
		Route:          rec.Route,
		HTTPMethod:     rec.Method,
		URL:            rec.URL,
		Status:         rec.Status,
		DurationMicros: rec.Duration.Microseconds(),
		Root:           spanJSON(rec.Root),
	})
}
