package service

import (
	"encoding/json"
	"net/http"
	"strconv"

	"pdr/internal/core"
	"pdr/internal/monitor"
	"pdr/internal/motion"
)

// WatchRequest is the body of POST /v1/watch: register a standing PDR query
// re-evaluated on each update tick.
type WatchRequest struct {
	Rho    float64     `json:"rho,omitempty"`
	Varrho float64     `json:"varrho,omitempty"`
	L      float64     `json:"l"`
	Ahead  motion.Tick `json:"ahead"`
	Every  motion.Tick `json:"every"`
	Method string      `json:"method"`
}

// WatchResponse returns the subscription id.
type WatchResponse struct {
	ID int `json:"id"`
}

// EventJSON is one continuous-query change notification.
type EventJSON struct {
	SubID       int         `json:"subId"`
	At          motion.Tick `json:"at"`
	Target      motion.Tick `json:"target"`
	First       bool        `json:"first"`
	Area        float64     `json:"area"`
	AddedArea   float64     `json:"addedArea"`
	RemovedArea float64     `json:"removedArea"`
	Added       []RectJSON  `json:"added,omitempty"`
	Removed     []RectJSON  `json:"removed,omitempty"`
}

// registerWatchRoutes wires the continuous-query and audit endpoints;
// called from New.
func (s *Service) registerWatchRoutes() {
	s.handle("POST /v1/watch", s.handleWatch)
	s.handle("DELETE /v1/watch/{id}", s.handleUnwatch)
	s.handle("GET /v1/past", s.handlePast)
}

// handlePast answers GET /v1/past: an exact PDR query at a PAST timestamp
// reconstructed from the movement archive (requires the server to be
// configured with history; pdrserve enables it). Parameters: rho or varrho,
// l, at ("now-K" or an absolute tick before now).
func (s *Service) handlePast(w http.ResponseWriter, r *http.Request) {
	qp := r.URL.Query()
	l, err := strconv.ParseFloat(qp.Get("l"), 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad l %q", qp.Get("l"))
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	at, err := parsePastTick(qp.Get("at"), s.srv.Now())
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rho, err := s.parseRhoLocked(qp)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q := core.Query{Rho: rho, L: l, At: at}
	res, err := s.srv.PastSnapshotTraced(q, requestSpan(r))
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	annotateQuery(r, q, nil, "past-exact", res)
	out := QueryResponse{
		Method: "past-exact", At: at, Rho: rho, L: l,
		Rects: make([]RectJSON, len(res.Region)),
		Area:  res.Region.Area(), CPUMicros: res.CPU.Microseconds(),
	}
	for i, rect := range res.Region {
		out.Rects[i] = RectJSON{rect.MinX, rect.MinY, rect.MaxX, rect.MaxY}
	}
	writeJSON(w, out)
}

func (s *Service) handleWatch(w http.ResponseWriter, r *http.Request) {
	var req WatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	method, err := parseMethod(req.Method)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rho := req.Rho
	if rho == 0 && req.Varrho != 0 {
		area := s.srv.Config().Area
		rho = float64(s.srv.NumObjects()) * req.Varrho / area.Area()
	}
	id, err := s.mon.Register(monitor.ContinuousQuery{
		Rho: rho, L: req.L, Ahead: req.Ahead, Every: req.Every, Method: method,
	})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, WatchResponse{ID: id})
}

func (s *Service) handleUnwatch(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad id %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.mon.Unregister(id) {
		httpError(w, http.StatusNotFound, "no subscription %d", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// eventsJSON converts monitor events for the updates response.
func eventsJSON(events []monitor.Event) []EventJSON {
	out := make([]EventJSON, len(events))
	for i, ev := range events {
		ej := EventJSON{
			SubID: ev.SubID, At: ev.At, Target: ev.Target, First: ev.First,
			Area: ev.Region.Area(), AddedArea: ev.Added.Area(), RemovedArea: ev.Removed.Area(),
		}
		for _, r := range ev.Added {
			ej.Added = append(ej.Added, RectJSON{r.MinX, r.MinY, r.MaxX, r.MaxY})
		}
		for _, r := range ev.Removed {
			ej.Removed = append(ej.Removed, RectJSON{r.MinX, r.MinY, r.MaxX, r.MaxY})
		}
		out[i] = ej
	}
	return out
}
