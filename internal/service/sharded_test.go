package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pdr/internal/core"
	"pdr/internal/shard"
	"pdr/internal/wire"
)

// shardedTestService builds a service over a 4-shard engine with the same
// config testService uses, so answers are directly comparable.
func shardedTestService(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.HistM = 50
	cfg.L = 60
	cfg.KeepHistory = true
	eng, err := shard.New(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewWithEngine(eng)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	return svc, ts
}

// TestShardedServiceFlow drives the full HTTP surface against a sharded
// engine and cross-checks every query answer against an unsharded service
// running the identical workload: the -shards flag must be invisible in
// the API's responses.
func TestShardedServiceFlow(t *testing.T) {
	_, sharded := shardedTestService(t)
	_, plain := testService(t)

	gs := loadWorkload(t, sharded, 2000)
	gp := loadWorkload(t, plain, 2000)
	advanceTicks(t, sharded, gs, 3)
	advanceTicks(t, plain, gp, 3)

	for _, q := range []string{
		"/v1/query?method=fr&varrho=2&l=60&at=now%2B10",
		"/v1/query?method=dh-opt&varrho=2&l=60&at=now%2B5",
		"/v1/query?method=bf&varrho=2&l=60&at=now",
		"/v1/query?method=fr&varrho=2&l=60&until=now%2B4",
	} {
		want := getJSONBody(t, plain, q)
		got := getJSONBody(t, sharded, q)
		// The trace header differs; the decoded payloads must not, except
		// for measured costs.
		scrub := func(m map[string]any) {
			for _, k := range []string{"cpuMicros", "wallMicros", "ios", "totalMicros", "cached", "cachedCpuMicros"} {
				delete(m, k)
			}
		}
		scrub(want)
		scrub(got)
		wb, _ := json.Marshal(want)
		gb, _ := json.Marshal(got)
		if !bytes.Equal(wb, gb) {
			t.Fatalf("%s diverges between sharded and unsharded service:\n  sharded:   %s\n  unsharded: %s", q, gb, wb)
		}
	}

	// The history archive answers over shards (concatenated gathers).
	presp, err := http.Get(sharded.URL + "/v1/past?varrho=2&l=60&at=1")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("past status %d", presp.StatusCode)
	}

	// Contours and stats serve from the engine adapters.
	cresp, err := http.Get(sharded.URL + "/v1/contours?level=0.0001&res=48")
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("contours status %d", cresp.StatusCode)
	}
	var st StatsResponse
	sresp, err := http.Get(sharded.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Objects != 2000 {
		t.Fatalf("stats objects = %d, want 2000", st.Objects)
	}

	// The per-shard instruments must be on the scrape path.
	body := getMetricsBody(t, sharded)
	for _, name := range []string{"pdr_shard_count", "pdr_shard_objects", "pdr_shard_straddlers"} {
		if !strings.Contains(body, name) {
			t.Errorf("metrics exposition missing %s", name)
		}
	}
}

func getJSONBody(t *testing.T, ts *httptest.Server, path string) map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s status %d", path, resp.StatusCode)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestShardedApplyEndpoint exercises POST /v1/apply: between-tick writes
// land without moving the clock, and state-mismatched deletes are rejected.
func TestShardedApplyEndpoint(t *testing.T) {
	_, ts := shardedTestService(t)
	loadWorkload(t, ts, 500)

	ins := wire.Record{Kind: wire.KindInsert, Tick: 0, ID: 900001, X: 400, Y: 400, VX: 2, VY: 1, Ref: 0}
	del := ins
	del.Kind = wire.KindDelete
	body, _ := json.Marshal(ApplyRequest{Updates: []wire.Record{ins, del}})
	resp, err := http.Post(ts.URL+"/v1/apply", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply status %d", resp.StatusCode)
	}
	var ar ApplyResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	if ar.Applied != 2 || ar.Objects != 500 || ar.Now != 0 {
		t.Fatalf("apply response %+v (insert+delete must leave population and clock unchanged)", ar)
	}

	// A delete whose state does not match the live movement is a conflict.
	bogus := wire.Record{Kind: wire.KindDelete, Tick: 0, ID: 900002, X: 1, Y: 1}
	body, _ = json.Marshal(ApplyRequest{Updates: []wire.Record{bogus}})
	r2, err := http.Post(ts.URL+"/v1/apply", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusConflict {
		t.Fatalf("bogus delete status %d, want %d", r2.StatusCode, http.StatusConflict)
	}

	// A record kind that is not an update is a bad request.
	body, _ = json.Marshal(ApplyRequest{Updates: []wire.Record{{Kind: wire.KindState, ID: 1}}})
	r3, err := http.Post(ts.URL+"/v1/apply", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusBadRequest {
		t.Fatalf("state-record apply status %d, want %d", r3.StatusCode, http.StatusBadRequest)
	}
}
