package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pdr/internal/core"
	"pdr/internal/motion"
	"pdr/internal/stopwatch"
	"pdr/internal/telemetry"
)

// TraceIDHeader is the response header carrying the request's trace ID;
// the same ID appears in the slow-query log and resolves at
// GET /debug/traces/{id} while the trace store retains the trace.
const TraceIDHeader = "X-Pdr-Trace-Id"

// handle registers pattern on the mux wrapped in the telemetry middleware:
// per-route latency histograms, per-route/status request counters, request
// tracing, and the slow-query log. The route label is the path part of the
// pattern, so cardinality stays bounded by the API surface, never by
// client input.
func (s *Service) handle(pattern string, h http.HandlerFunc) {
	route := pattern
	if i := strings.IndexByte(pattern, ' '); i >= 0 {
		route = pattern[i+1:]
	}
	latency := s.reg.Histogram("pdr_http_request_seconds",
		"HTTP request latency by route.", nil, telemetry.L("route", route))
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		detail := &queryDetail{}
		var tr *telemetry.Trace
		if s.tracer != nil {
			tr = s.tracer.maybeStart(route)
		}
		if tr != nil {
			// The header goes out before the handler writes the status
			// line; the body of the trace fills in as the request runs.
			detail.span = tr.Root()
			w.Header().Set(TraceIDHeader, tr.ID().String())
		}
		r = r.WithContext(context.WithValue(r.Context(), detailKey{}, detail))
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		sw := stopwatch.Start()
		h(rec, r)
		var elapsed time.Duration
		var traceID telemetry.TraceID
		if tr != nil {
			// The trace's root duration is the request duration: the slow
			// log, the latency histogram, and /debug/traces/{id} all report
			// the same measurement for a traced request.
			tr.End()
			elapsed = tr.Duration()
			traceID = tr.ID()
			s.tracer.finish(tr, route, r, rec.status, elapsed)
		} else {
			elapsed = sw.Elapsed()
		}
		latency.Observe(elapsed.Seconds())
		s.reg.Counter("pdr_http_requests_total",
			"HTTP requests by route and status.",
			telemetry.L("route", route),
			telemetry.L("status", strconv.Itoa(rec.status))).Inc()
		if s.slow != nil {
			s.slow.maybeLog(route, r, rec.status, elapsed, detail, traceID)
		}
	})
}

// statusRecorder captures the response status for the request counters.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush delegates to the underlying writer so a streaming handler behind
// the middleware keeps working; the embedded ResponseWriter would otherwise
// hide the optional http.Flusher interface.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// detailKey carries the per-request queryDetail through the context.
type detailKey struct{}

// queryDetail is filled in by query handlers so the slow-query log can
// report engine-level context (method, parameters, phase breakdown) beyond
// what the middleware sees.
type queryDetail struct {
	set    bool
	method string
	rho, l float64
	at     motion.Tick
	until  *motion.Tick
	ios    int64
	cpu    time.Duration
	wall   time.Duration
	cached bool
	phases []telemetry.PhaseSpan
	// span is the request's root span when the request is traced; handlers
	// fetch it via requestSpan to hang engine subtrees off it. Nil when
	// tracing is off or the request was sampled out.
	span *telemetry.Span
}

// requestSpan returns the request's root span, nil for untraced requests
// (tracing disabled, sampled out, or a request that bypassed the
// middleware, e.g. a direct handler test).
func requestSpan(r *http.Request) *telemetry.Span {
	d, ok := r.Context().Value(detailKey{}).(*queryDetail)
	if !ok {
		return nil
	}
	return d.span
}

// annotateQuery records engine result detail on the request's carrier (a
// no-op for requests that did not pass through the middleware, e.g. direct
// handler tests).
func annotateQuery(r *http.Request, q core.Query, until *motion.Tick, method string, res *core.Result) {
	d, ok := r.Context().Value(detailKey{}).(*queryDetail)
	if !ok {
		return
	}
	d.set = true
	d.method = method
	d.rho, d.l, d.at = q.Rho, q.L, q.At
	d.until = until
	d.ios = res.IOs
	d.cpu = res.CPU
	d.wall = res.Wall
	d.cached = res.Cached
	d.phases = res.Phases
}

// slowQueryLog writes one structured JSON line per request slower than the
// threshold, up to maxLines lines. Handlers run concurrently, so the
// writer is mutex-guarded.
type slowQueryLog struct {
	threshold time.Duration
	// maxLines caps the lines ever written (0 = unbounded); beyond it,
	// slow requests still count on the slow-query counter but their lines
	// are dropped and counted on dropped — a long-running server cannot
	// grow the log file without limit.
	maxLines int64
	count    *telemetry.Counter
	dropped  *telemetry.Counter
	written  atomic.Int64
	mu       sync.Mutex // pdr:lockrank svc-slowlog 50
	w        io.Writer  // guarded by mu
}

// slowQueryLine is the JSON schema of one slow-query log record.
type slowQueryLine struct {
	Time           string `json:"time"`
	Route          string `json:"route"`
	HTTPMethod     string `json:"httpMethod"`
	URL            string `json:"url"`
	Status         int    `json:"status"`
	DurationMicros int64  `json:"durationMicros"`
	// TraceID resolves at GET /debug/traces/{id} while the trace store
	// retains the trace; absent for untraced requests.
	TraceID string           `json:"traceId,omitempty"`
	Query   *slowQueryDetail `json:"query,omitempty"`
}

type slowQueryDetail struct {
	Method     string          `json:"method"`
	Rho        float64         `json:"rho"`
	L          float64         `json:"l"`
	At         motion.Tick     `json:"at"`
	Until      *motion.Tick    `json:"until,omitempty"`
	IOs        int64           `json:"ios"`
	CPUMicros  int64           `json:"cpuMicros"`
	WallMicros int64           `json:"wallMicros"`
	Cached     bool            `json:"cached,omitempty"`
	Phases     []phaseSpanJSON `json:"phases,omitempty"`
}

type phaseSpanJSON struct {
	Phase  string `json:"phase"`
	Micros int64  `json:"micros"`
}

func (l *slowQueryLog) maybeLog(route string, r *http.Request, status int, elapsed time.Duration, d *queryDetail, traceID telemetry.TraceID) {
	if elapsed < l.threshold {
		return
	}
	l.count.Inc()
	if l.maxLines > 0 && l.written.Add(1) > l.maxLines {
		l.dropped.Inc()
		return
	}
	line := slowQueryLine{
		Time:           time.Now().UTC().Format(time.RFC3339Nano),
		Route:          route,
		HTTPMethod:     r.Method,
		URL:            r.URL.String(),
		Status:         status,
		DurationMicros: elapsed.Microseconds(),
	}
	if traceID != 0 {
		line.TraceID = traceID.String()
	}
	if d != nil && d.set {
		q := &slowQueryDetail{
			Method: d.method, Rho: d.rho, L: d.l, At: d.at, Until: d.until,
			IOs: d.ios, CPUMicros: d.cpu.Microseconds(),
			WallMicros: d.wall.Microseconds(), Cached: d.cached,
		}
		for _, p := range d.phases {
			q.Phases = append(q.Phases, phaseSpanJSON{Phase: p.Name, Micros: p.Duration.Microseconds()})
		}
		line.Query = q
	}
	buf, err := json.Marshal(line)
	if err != nil {
		return
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	// lint:ignore errchecklite diagnostics sink: a failed slow-log write
	// must never fail the request it describes.
	l.w.Write(buf)
}

// handleMetrics serves GET /metrics in the Prometheus text format. It reads
// only atomic instruments, so it never takes the engine lock — a slow
// scraper cannot stall query traffic.
func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	if err := s.reg.WriteText(&buf); err != nil {
		httpError(w, http.StatusInternalServerError, "metrics exposition: %v", err)
		return
	}
	w.Header().Set("Content-Type", telemetry.TextContentType)
	// lint:ignore errchecklite the exposition is fully buffered; a failed
	// write means the scraper hung up and there is nobody left to tell.
	w.Write(buf.Bytes())
}
