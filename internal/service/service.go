// Package service exposes the PDR engine over HTTP with a JSON API — the
// deployment surface a location-based-services backend would integrate:
//
//	POST   /v1/load       bulk-load initial object states
//	POST   /v1/updates    advance the clock and apply location updates
//	                      (returns standing-query change events)
//	POST   /v1/apply      apply insert/delete updates between ticks
//	                      (the clock does not move)
//	GET    /v1/query      answer a snapshot or interval PDR query
//	POST   /v1/watch      register a standing (continuous) PDR query
//	DELETE /v1/watch/{id} remove a standing query
//	GET    /v1/past       exact PDR query at a past timestamp (history)
//	GET    /v1/contours   extract iso-density contour lines (PA surfaces)
//	GET    /v1/stats      server and buffer-pool statistics
//	GET    /healthz       liveness
//
// The engine is single-writer/many-reader: query handlers share a read
// lock and run concurrently (fanning work out to the engine's worker pool),
// while load/update/watch handlers take the write lock. The service-level
// RWMutex keeps parse-time clock reads coherent with query execution and
// guards the monitor; the engine has its own internal lock for callers that
// bypass the service.
package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"pdr/internal/cache"
	"pdr/internal/core"
	"pdr/internal/monitor"
	"pdr/internal/motion"
	"pdr/internal/pa"
	"pdr/internal/storage"
	"pdr/internal/telemetry"
	"pdr/internal/tracestore"
	"pdr/internal/wire"
)

// DefaultTraceBuffer is the trace-store recency-ring capacity used when
// WithTracing is not given; the slowest-kept reservoir is sized at a
// quarter of the ring.
const DefaultTraceBuffer = 256

// Engine is the query/mutation surface the service publishes over HTTP.
// Both core.Server (the single-lock engine) and shard.Engine (the
// space-partitioned scatter-gather engine, see docs/PERFORMANCE.md
// "Sharding") satisfy it; pick with pdrserve's -shards flag.
type Engine interface {
	Load(states []motion.State) error
	Tick(now motion.Tick, updates []motion.Update) error
	Apply(u motion.Update) error
	Now() motion.Tick
	Horizon() motion.Tick
	NumObjects() int
	Config() core.Config
	Epoch() uint64
	SnapshotTraced(q core.Query, m core.Method, sp *telemetry.Span) (*core.Result, error)
	IntervalTraced(q core.Query, until motion.Tick, m core.Method, sp *telemetry.Span) (*core.Result, error)
	PastSnapshotTraced(q core.Query, sp *telemetry.Span) (*core.Result, error)
	Contours(at motion.Tick, level float64, res int) ([]pa.ContourSegment, error)
	PoolStats() storage.Stats
	PoolPages() int
	HistogramBytes() int
	SurfaceBytes() int
	Cache() *cache.Cache
	CacheStats() cache.Stats
	SetMetrics(m *core.Metrics)
	AttachTelemetry(reg *telemetry.Registry)
}

// Service wraps a PDR engine with an HTTP API.
type Service struct {
	// mu is the outermost lock in the process: every engine and monitor
	// lock nests inside it, never the reverse.
	mu sync.RWMutex // pdr:lockrank service 10
	// srv is the single-writer/many-reader engine; guarded by mu (enforced
	// by pdrvet's locked analyzer): queries hold the read lock, ticks and
	// loads the write lock.
	srv Engine
	// mon re-evaluates standing queries; guarded by mu (registration and
	// advancement mutate it, so those handlers take the write lock).
	mon *monitor.Monitor
	mux *http.ServeMux
	// reg and met are atomic-based telemetry; safe without mu.
	reg  *telemetry.Registry
	met  *core.Metrics
	slow *slowQueryLog // nil unless WithSlowQueryLog was given
	// tracer samples and stores request traces; nil when tracing is
	// disabled (trace buffer 0). Internally synchronized — handlers use it
	// without mu.
	tracer *tracer
	// rts is the lazily-refreshed runtime sample behind the pdr_go_*
	// gauges and the /v1/stats runtime fields; internally synchronized.
	rts   *telemetry.RuntimeStats
	start time.Time // construction instant, for uptime

	traceSample float64
	traceBuffer int
}

// Option customizes a Service at construction.
type Option func(*Service)

// WithRegistry exposes the service's metrics on an existing registry
// (e.g. one shared with other subsystems of the process).
func WithRegistry(reg *telemetry.Registry) Option {
	return func(s *Service) { s.reg = reg }
}

// WithSlowQueryLog enables the slow-query log: every request slower than
// threshold is written to w as one structured JSON line (see
// docs/OBSERVABILITY.md for the schema).
func WithSlowQueryLog(threshold time.Duration, w io.Writer) Option {
	return func(s *Service) {
		s.slow = &slowQueryLog{threshold: threshold, w: w}
	}
}

// WithSlowQueryCap bounds the slow-query log at maxLines written lines;
// beyond the cap, lines are dropped (and counted on
// pdr_http_slow_log_dropped_total) so a long-running server can never
// grow the log without limit. 0 means unbounded.
func WithSlowQueryCap(maxLines int64) Option {
	return func(s *Service) {
		if s.slow != nil {
			s.slow.maxLines = maxLines
		}
	}
}

// WithTracing configures request tracing: sample is the head-sampling
// probability in [0, 1] (1 = trace everything, the default; 0 = trace
// nothing), buffer is the trace-store recency-ring capacity (0 disables
// tracing entirely and removes the per-request trace machinery). See
// docs/OBSERVABILITY.md "Tracing".
func WithTracing(sample float64, buffer int) Option {
	return func(s *Service) {
		s.traceSample = sample
		s.traceBuffer = buffer
	}
}

// New creates a service over a fresh single-lock engine.
func New(cfg core.Config, opts ...Option) (*Service, error) {
	srv, err := core.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	return NewWithEngine(srv, opts...)
}

// NewWithEngine creates a service over an existing engine — the entry point
// for the sharded engine (internal/shard) or a pre-built core.Server. The
// service attaches its metrics bundle and substrate telemetry to the engine,
// so call it before the engine serves traffic.
func NewWithEngine(srv Engine, opts ...Option) (*Service, error) {
	s := &Service{
		srv: srv, mon: monitor.New(srv), mux: http.NewServeMux(),
		start: time.Now(), traceSample: 1, traceBuffer: DefaultTraceBuffer,
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.reg == nil {
		s.reg = telemetry.NewRegistry()
	}
	s.met = core.NewMetrics(s.reg)
	srv.SetMetrics(s.met)
	srv.AttachTelemetry(s.reg)
	s.mon.SetMetrics(monitor.NewMetrics(s.reg))
	if s.slow != nil {
		s.slow.count = s.reg.Counter("pdr_http_slow_queries_total",
			"Requests that exceeded the slow-query threshold.")
		s.slow.dropped = s.reg.Counter("pdr_http_slow_log_dropped_total",
			"Slow-query log lines dropped by the entry cap.")
	}
	if s.traceBuffer > 0 {
		store := tracestore.New(s.traceBuffer, (s.traceBuffer+3)/4)
		store.SetMetrics(tracestore.NewMetrics(s.reg))
		s.tracer = &tracer{
			store: store,
			rate:  s.traceSample,
			sampled: s.reg.Counter("pdr_trace_sampled_total",
				"Requests traced and stored in the trace store."),
			dropped: s.reg.Counter("pdr_trace_dropped_total",
				"Requests not traced (head sampling decided against)."),
		}
	}
	s.rts = telemetry.NewRuntimeStats(s.reg)
	s.reg.GaugeFunc("pdr_process_uptime_seconds",
		"Seconds since the service was constructed.",
		func() float64 { return time.Since(s.start).Seconds() })
	s.registerWatchRoutes()
	s.handle("POST /v1/load", s.handleLoad)
	s.handle("POST /v1/updates", s.handleUpdates)
	s.handle("POST /v1/apply", s.handleApply)
	s.handle("GET /v1/query", s.handleQuery)
	s.handle("GET /v1/contours", s.handleContours)
	s.handle("GET /v1/stats", s.handleStats)
	s.handle("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		// lint:ignore errchecklite liveness probe: a failed write to a
		// hung-up prober has no one left to report to.
		fmt.Fprintln(w, "ok")
	})
	// The scrape path is registered raw: instrumenting it would make every
	// scrape mutate the very series it is reading.
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// The trace-inspection paths are registered raw too: reading traces
	// must never generate traces, or an idle debugging session fills the
	// very ring it is inspecting.
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceByID)
	return s, nil
}

// Registry exposes the service's telemetry registry (for embedding the
// exposition elsewhere, e.g. a debug listener).
func (s *Service) Registry() *telemetry.Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Engine returns the wrapped PDR engine for offline pre-loading; once the
// service is receiving HTTP traffic, all access must go through the API.
//
// lint:ignore locked offline escape hatch: documented as pre-traffic only,
// so no handler can race it.
func (s *Service) Engine() Engine { return s.srv }

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSONStatus(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus encodes v into a buffer before touching the connection,
// so an encoding failure yields a clean 500 instead of a truncated 200
// body, and the status line is never written twice.
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// lint:ignore errchecklite the reply is fully buffered; a failed write
	// means the client hung up and there is nobody left to tell.
	w.Write(buf.Bytes())
}

// LoadRequest is the body of POST /v1/load.
type LoadRequest struct {
	States []wire.Record `json:"states"`
}

// LoadResponse reports the load outcome.
type LoadResponse struct {
	Loaded int         `json:"loaded"`
	Now    motion.Tick `json:"now"`
}

func (s *Service) handleLoad(w http.ResponseWriter, r *http.Request) {
	var req LoadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	states := make([]motion.State, len(req.States))
	for i, rec := range req.States {
		states[i] = rec.State()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.srv.Load(states); err != nil {
		httpError(w, http.StatusConflict, "load: %v", err)
		return
	}
	writeJSON(w, LoadResponse{Loaded: len(states), Now: s.srv.Now()})
}

// UpdatesRequest is the body of POST /v1/updates: the clock advances to Now
// and the updates are applied in order.
type UpdatesRequest struct {
	Now     motion.Tick   `json:"now"`
	Updates []wire.Record `json:"updates"`
}

// UpdatesResponse reports the tick outcome, including any change events
// from registered standing queries.
type UpdatesResponse struct {
	Applied int         `json:"applied"`
	Now     motion.Tick `json:"now"`
	Objects int         `json:"objects"`
	Events  []EventJSON `json:"events,omitempty"`
}

func (s *Service) handleUpdates(w http.ResponseWriter, r *http.Request) {
	var req UpdatesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ups := make([]motion.Update, len(req.Updates))
	for i, rec := range req.Updates {
		u, err := rec.Update()
		if err != nil {
			httpError(w, http.StatusBadRequest, "update %d: %v", i, err)
			return
		}
		ups[i] = u
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	events, err := s.mon.AdvanceTraced(req.Now, ups, requestSpan(r))
	if err != nil {
		httpError(w, http.StatusConflict, "tick: %v", err)
		return
	}
	writeJSON(w, UpdatesResponse{
		Applied: len(ups), Now: s.srv.Now(), Objects: s.srv.NumObjects(),
		Events: eventsJSON(events),
	})
}

// ApplyRequest is the body of POST /v1/apply: between-tick movement updates
// applied at the current clock. Unlike /v1/updates, the clock does not move
// and standing queries are not re-evaluated.
type ApplyRequest struct {
	Updates []wire.Record `json:"updates"`
}

// ApplyResponse reports the apply outcome.
type ApplyResponse struct {
	Applied int         `json:"applied"`
	Now     motion.Tick `json:"now"`
	Objects int         `json:"objects"`
}

func (s *Service) handleApply(w http.ResponseWriter, r *http.Request) {
	var req ApplyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ups := make([]motion.Update, len(req.Updates))
	for i, rec := range req.Updates {
		u, err := rec.Update()
		if err != nil {
			httpError(w, http.StatusBadRequest, "update %d: %v", i, err)
			return
		}
		ups[i] = u
	}
	// Applies bypass the monitor (the clock does not move, so no standing
	// query comes due) and take only the read side of the service lock: the
	// engine serializes its own writes, and on a sharded engine applies to
	// different shards proceed in parallel — the contention regime
	// cmd/pdrload's apply traffic class measures.
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i, u := range ups {
		if err := s.srv.Apply(u); err != nil {
			httpError(w, http.StatusConflict, "apply %d: %v", i, err)
			return
		}
	}
	writeJSON(w, ApplyResponse{Applied: len(ups), Now: s.srv.Now(), Objects: s.srv.NumObjects()})
}

// RectJSON is one dense rectangle of a query answer.
type RectJSON struct {
	MinX float64 `json:"minX"`
	MinY float64 `json:"minY"`
	MaxX float64 `json:"maxX"`
	MaxY float64 `json:"maxY"`
}

// QueryResponse is the body returned by GET /v1/query.
type QueryResponse struct {
	Method      string        `json:"method"`
	At          motion.Tick   `json:"at"`
	Until       *motion.Tick  `json:"until,omitempty"`
	Rho         float64       `json:"rho"`
	L           float64       `json:"l"`
	Rects       []RectJSON    `json:"rects"`
	Area        float64       `json:"area"`
	Rings       [][]PointJSON `json:"rings,omitempty"`
	CPUMicros   int64         `json:"cpuMicros"`
	WallMicros  int64         `json:"wallMicros"`
	IOs         int64         `json:"ios"`
	TotalMicros int64         `json:"totalMicros"`
	// Cached reports the answer came from the result cache (for an interval,
	// every per-timestamp snapshot did); CachedCPUMicros is the evaluation
	// cost the cache saved.
	Cached          bool  `json:"cached,omitempty"`
	CachedCPUMicros int64 `json:"cachedCpuMicros,omitempty"`
}

// PointJSON is one outline vertex.
type PointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// handleQuery answers GET /v1/query with parameters:
//
//	method   fr | pa | dh-opt | dh-pess | bf        (default fr)
//	rho      absolute density threshold, or
//	varrho   relative threshold (paper's 1..5)
//	l        neighborhood edge (required)
//	at       now | now+K | absolute tick            (default now)
//	until    optional: interval query end (same forms as at)
//	outline  1 to include rectilinear boundary rings
func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	qp := r.URL.Query()
	method, err := parseMethod(qp.Get("method"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	l, err := strconv.ParseFloat(qp.Get("l"), 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad l %q", qp.Get("l"))
		return
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	now := s.srv.Now()
	horizon := s.srv.Horizon()

	rho, err := s.parseRhoLocked(qp)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	at, err := parseTick(qp.Get("at"), now, horizon)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q := core.Query{Rho: rho, L: l, At: at}

	var res *core.Result
	var until *motion.Tick
	if u := qp.Get("until"); u != "" {
		end, err := parseTick(u, now, horizon)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		until = &end
		res, err = s.srv.IntervalTraced(q, end, method, requestSpan(r))
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
	} else {
		res, err = s.srv.SnapshotTraced(q, method, requestSpan(r))
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
	}
	annotateQuery(r, q, until, res.Method.String(), res)

	out := QueryResponse{
		Method: res.Method.String(), At: q.At, Until: until,
		Rho: rho, L: l,
		Rects:           make([]RectJSON, len(res.Region)),
		Area:            res.Region.Area(),
		CPUMicros:       res.CPU.Microseconds(),
		WallMicros:      res.Wall.Microseconds(),
		IOs:             res.IOs,
		TotalMicros:     res.Total().Microseconds(),
		Cached:          res.Cached,
		CachedCPUMicros: res.CachedCPU.Microseconds(),
	}
	for i, rect := range res.Region {
		out.Rects[i] = RectJSON{rect.MinX, rect.MinY, rect.MaxX, rect.MaxY}
	}
	if qp.Get("outline") == "1" {
		for _, ring := range res.Region.Outline() {
			pts := make([]PointJSON, len(ring))
			for i, p := range ring {
				pts[i] = PointJSON{p.X, p.Y}
			}
			out.Rings = append(out.Rings, pts)
		}
	}
	writeJSON(w, out)
}

// ContourResponse is the body of GET /v1/contours.
type ContourResponse struct {
	Level    float64      `json:"level"`
	At       motion.Tick  `json:"at"`
	Segments [][4]float64 `json:"segments"` // x1, y1, x2, y2
}

func (s *Service) handleContours(w http.ResponseWriter, r *http.Request) {
	qp := r.URL.Query()
	level, err := strconv.ParseFloat(qp.Get("level"), 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad level %q", qp.Get("level"))
		return
	}
	res := 96
	if v := qp.Get("res"); v != "" {
		if res, err = strconv.Atoi(v); err != nil {
			httpError(w, http.StatusBadRequest, "bad res %q", v)
			return
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	at, err := parseTick(qp.Get("at"), s.srv.Now(), s.srv.Horizon())
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	segs, err := s.srv.Contours(at, level, res)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	out := ContourResponse{Level: level, At: at, Segments: make([][4]float64, len(segs))}
	for i, sg := range segs {
		out.Segments[i] = [4]float64{sg.A.X, sg.A.Y, sg.B.X, sg.B.Y}
	}
	writeJSON(w, out)
}

// StatsResponse is the body of GET /v1/stats. The telemetry-backed fields
// (QueriesServed, Subscriptions, PoolHitRatio) read the same instruments
// /metrics exposes, so the two surfaces always agree.
type StatsResponse struct {
	Now            motion.Tick      `json:"now"`
	Objects        int              `json:"objects"`
	HistogramBytes int              `json:"histogramBytes"`
	SurfaceBytes   int              `json:"surfaceBytes"`
	IndexPages     int              `json:"indexPages"`
	PoolReads      int64            `json:"poolReads"`
	PoolWrites     int64            `json:"poolWrites"`
	PoolHits       int64            `json:"poolHits"`
	PoolHitRatio   float64          `json:"poolHitRatio"`
	Subscriptions  int              `json:"subscriptions"`
	QueriesServed  map[string]int64 `json:"queriesServed"`
	UptimeHorizon  motion.Tick      `json:"horizon"`
	// Result-cache counters (all zero when Config.CacheBytes is 0); the
	// same instruments /metrics exposes as pdr_cache_*.
	CacheHits          int64   `json:"cacheHits"`
	CacheMisses        int64   `json:"cacheMisses"`
	CacheEvictions     int64   `json:"cacheEvictions"`
	SingleflightShared int64   `json:"singleflightShared"`
	CacheBytes         int64   `json:"cacheBytes"`
	CacheEntries       int64   `json:"cacheEntries"`
	CacheHitRatio      float64 `json:"cacheHitRatio"`
	// Process runtime: the same sample behind /metrics' uptime gauge and
	// pdr_go_goroutines.
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Goroutines    int     `json:"goroutines"`
	// Trace sampling counters: the same instruments /metrics exposes as
	// pdr_trace_sampled_total / pdr_trace_dropped_total (zero when tracing
	// is disabled).
	TraceSampled int64 `json:"traceSampled"`
	TraceDropped int64 `json:"traceDropped"`
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.srv.PoolStats()
	cst := s.srv.CacheStats()
	var traceSampled, traceDropped int64
	if s.tracer != nil {
		traceSampled = s.tracer.sampled.Value()
		traceDropped = s.tracer.dropped.Value()
	}
	writeJSON(w, StatsResponse{
		Now:                s.srv.Now(),
		Objects:            s.srv.NumObjects(),
		HistogramBytes:     s.srv.HistogramBytes(),
		SurfaceBytes:       s.srv.SurfaceBytes(),
		IndexPages:         s.srv.PoolPages(),
		PoolReads:          st.Reads,
		PoolWrites:         st.Writes,
		PoolHits:           st.Hits,
		PoolHitRatio:       st.HitRatio(),
		Subscriptions:      s.mon.NumSubscriptions(),
		QueriesServed:      s.met.QueriesServed(),
		UptimeHorizon:      s.srv.Horizon(),
		CacheHits:          cst.Hits,
		CacheMisses:        cst.Misses,
		CacheEvictions:     cst.Evictions,
		SingleflightShared: cst.Shared,
		CacheBytes:         cst.Bytes,
		CacheEntries:       cst.Entries,
		CacheHitRatio:      cst.HitRatio(),
		UptimeSeconds:      time.Since(s.start).Seconds(),
		Goroutines:         s.rts.Goroutines(),
		TraceSampled:       traceSampled,
		TraceDropped:       traceDropped,
	})
}

// parseRhoLocked resolves rho= (absolute) or varrho= (relative to the live
// count) query parameters. The Locked suffix is the pdrvet convention: the
// caller must hold s.mu.
func (s *Service) parseRhoLocked(qp interface{ Get(string) string }) (float64, error) {
	if v := qp.Get("rho"); v != "" {
		rho, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("bad rho %q", v)
		}
		return rho, nil
	}
	if v := qp.Get("varrho"); v != "" {
		varrho, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("bad varrho %q", v)
		}
		area := s.srv.Config().Area
		return float64(s.srv.NumObjects()) * varrho / area.Area(), nil
	}
	return 0, fmt.Errorf("one of rho or varrho is required")
}

// parseTick parses a query timestamp ("now", "now+K", or an absolute tick)
// and validates it against the engine's live window [now, now+horizon], so
// clients get a clear 400 naming the window instead of an opaque engine
// failure. Past forms are redirected to /v1/past.
func parseTick(v string, now, horizon motion.Tick) (motion.Tick, error) {
	switch {
	case v == "" || v == "now":
		return now, nil
	case strings.HasPrefix(v, "now+"):
		k, err := strconv.Atoi(v[len("now+"):])
		if err != nil || k < 0 {
			return 0, fmt.Errorf("bad timestamp %q", v)
		}
		if motion.Tick(k) > horizon {
			return 0, fmt.Errorf("timestamp %q is beyond the maintained horizon: the engine answers [now, now+%d]", v, horizon)
		}
		return now + motion.Tick(k), nil
	case strings.HasPrefix(v, "now-"):
		return 0, fmt.Errorf("timestamp %q is in the past; use /v1/past for historical queries", v)
	default:
		k, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad timestamp %q", v)
		}
		t := motion.Tick(k)
		if t < now {
			return 0, fmt.Errorf("timestamp %d precedes now=%d; use /v1/past for historical queries", t, now)
		}
		if t > now+horizon {
			return 0, fmt.Errorf("timestamp %d is beyond the maintained horizon: the engine answers [%d, %d]", t, now, now+horizon)
		}
		return t, nil
	}
}

// parsePastTick parses the timestamp of a /v1/past query: "now-K" or an
// absolute tick strictly before now (PastSnapshot covers only the past; the
// live window belongs to /v1/query).
func parsePastTick(v string, now motion.Tick) (motion.Tick, error) {
	var t motion.Tick
	switch {
	case strings.HasPrefix(v, "now-"):
		k, err := strconv.Atoi(v[len("now-"):])
		if err != nil || k < 0 {
			return 0, fmt.Errorf("bad timestamp %q", v)
		}
		t = now - motion.Tick(k)
	default:
		k, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad timestamp %q (want an absolute tick or now-K)", v)
		}
		t = motion.Tick(k)
	}
	if t < 0 {
		return 0, fmt.Errorf("timestamp %q is before the start of history: past queries cover [0, %d)", v, now)
	}
	if t >= now {
		return 0, fmt.Errorf("timestamp %d is not in the past (now=%d); use /v1/query for the live window", t, now)
	}
	return t, nil
}

func parseMethod(v string) (core.Method, error) {
	switch strings.ToLower(v) {
	case "", "fr":
		return core.FR, nil
	case "pa":
		return core.PA, nil
	case "dh-opt":
		return core.DHOptimistic, nil
	case "dh-pess":
		return core.DHPessimistic, nil
	case "bf":
		return core.BruteForce, nil
	default:
		return 0, fmt.Errorf("unknown method %q", v)
	}
}

// ListenAndServe runs the service on addr until the listener fails. The
// full timeout set is configured so a slow or stalled client can never pin
// a handler goroutine (and with it s.mu) indefinitely: WriteTimeout bounds
// the whole response, sized for exact FR interval queries which legitimately
// run tens of seconds at paper scale.
func (s *Service) ListenAndServe(addr string) error {
	server := &http.Server{
		Addr:              addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      120 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	return server.ListenAndServe()
}
