package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pdr/internal/core"
)

// tracedTestService builds a service with the given options over the
// standard small workload.
func tracedTestService(t *testing.T, opts ...Option) *httptest.Server {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.HistM = 50
	cfg.L = 60
	svc, err := New(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	loadWorkload(t, ts, 500)
	return ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp
}

// TestTraceHeaderResolvesToStoredTree is the acceptance path: the trace ID
// a query response carries resolves at /debug/traces/{id} to a span tree
// whose root duration is exactly the duration the slow-query log recorded
// for the same request — one measurement, three views.
func TestTraceHeaderResolvesToStoredTree(t *testing.T) {
	var log syncBuffer
	ts := tracedTestService(t, WithSlowQueryLog(time.Nanosecond, &log))

	var qr QueryResponse
	resp := getJSON(t, ts.URL+"/v1/query?method=fr&varrho=2&l=60", &qr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	id := resp.Header.Get(TraceIDHeader)
	if len(id) != 16 {
		t.Fatalf("%s = %q, want a 16-hex trace id", TraceIDHeader, id)
	}

	var tr TraceResponse
	if resp := getJSON(t, ts.URL+"/debug/traces/"+id, &tr); resp.StatusCode != http.StatusOK {
		t.Fatalf("trace lookup status %d", resp.StatusCode)
	}
	if tr.ID != id || tr.Route != "/v1/query" || tr.Status != http.StatusOK {
		t.Fatalf("trace record: %+v", tr)
	}
	if tr.Root.Name != "/v1/query" || tr.Root.DurationMicros != tr.DurationMicros {
		t.Fatalf("root span %q (%dµs) disagrees with record duration %dµs",
			tr.Root.Name, tr.Root.DurationMicros, tr.DurationMicros)
	}
	// The engine subtree hangs off the request root: snapshot → filter/
	// refine/union for an FR query.
	names := map[string]bool{}
	var walk func(SpanJSON)
	walk = func(sp SpanJSON) {
		names[sp.Name] = true
		for _, c := range sp.Children {
			walk(c)
		}
	}
	walk(tr.Root)
	for _, want := range []string{"snapshot", "filter", "refine", "union"} {
		if !names[want] {
			t.Errorf("span %q missing from stored tree", want)
		}
	}

	// The slow log (threshold 1ns logs everything) recorded the same ID and
	// the same microsecond measurement.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var found *slowQueryLine
		sc := bufio.NewScanner(strings.NewReader(log.String()))
		for sc.Scan() {
			var line slowQueryLine
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				t.Fatalf("bad slow-log line %q: %v", sc.Text(), err)
			}
			if line.TraceID == id {
				found = &line
			}
		}
		if found != nil {
			if found.DurationMicros != tr.DurationMicros {
				t.Fatalf("slow log says %dµs, trace store says %dµs — must be the same measurement",
					found.DurationMicros, tr.DurationMicros)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no slow-log line with traceId %s:\n%s", id, log.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTraceListing: /debug/traces lists recent traces newest-first with
// live sampling counters.
func TestTraceListing(t *testing.T) {
	ts := tracedTestService(t)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/query?method=dh-opt&varrho=2&l=60")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// The middleware files the trace after the response reaches the client;
	// poll until all three landed.
	deadline := time.Now().Add(5 * time.Second)
	var list TraceListResponse
	for {
		getJSON(t, ts.URL+"/debug/traces?limit=2", &list)
		if list.Sampled >= 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if list.Sampled < 3 {
		t.Fatalf("sampled = %d, want >= 3 (stats + queries)", list.Sampled)
	}
	if list.Dropped != 0 {
		t.Errorf("dropped = %d, want 0 at sample rate 1", list.Dropped)
	}
	if len(list.Traces) != 2 {
		t.Fatalf("limit=2 returned %d traces", len(list.Traces))
	}
	// Newest first, each summary resolvable.
	if list.Traces[0].Time < list.Traces[1].Time {
		t.Errorf("listing not newest-first: %s < %s", list.Traces[0].Time, list.Traces[1].Time)
	}
	var tr TraceResponse
	if resp := getJSON(t, ts.URL+"/debug/traces/"+list.Traces[0].ID, &tr); resp.StatusCode != http.StatusOK {
		t.Fatalf("summary id %q did not resolve: %d", list.Traces[0].ID, resp.StatusCode)
	}
	if tr.ID != list.Traces[0].ID {
		t.Errorf("resolved trace id %q != summary id %q", tr.ID, list.Traces[0].ID)
	}
}

// TestTracingModesBitIdentical: the query answer must be bit-identical
// whether the request is traced, sampled out, or tracing is disabled
// entirely — observability never changes answers.
func TestTracingModesBitIdentical(t *testing.T) {
	const q = "/v1/query?method=fr&varrho=2&l=60"
	var want QueryResponse

	// Traced (default: sample 1, buffer 256).
	ts := tracedTestService(t)
	resp := getJSON(t, ts.URL+q, &want)
	if resp.Header.Get(TraceIDHeader) == "" {
		t.Fatal("default service did not trace the query")
	}

	// Sampled out: tracing on, rate 0 — every request drops.
	tsOut := tracedTestService(t, WithTracing(0, 16))
	var out QueryResponse
	resp = getJSON(t, tsOut.URL+q, &out)
	if h := resp.Header.Get(TraceIDHeader); h != "" {
		t.Errorf("sampled-out request still carries %s=%q", TraceIDHeader, h)
	}

	// Disabled: buffer 0 removes the machinery; /debug/traces 404s.
	tsOff := tracedTestService(t, WithTracing(1, 0))
	var off QueryResponse
	resp = getJSON(t, tsOff.URL+q, &off)
	if h := resp.Header.Get(TraceIDHeader); h != "" {
		t.Errorf("tracing-disabled request still carries %s=%q", TraceIDHeader, h)
	}
	if resp := getJSON(t, tsOff.URL+"/debug/traces", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/traces with tracing disabled: status %d, want 404", resp.StatusCode)
	}

	for name, got := range map[string]QueryResponse{"sampled-out": out, "disabled": off} {
		if len(got.Rects) != len(want.Rects) {
			t.Fatalf("%s: %d rects, traced run had %d", name, len(got.Rects), len(want.Rects))
		}
		for i := range got.Rects {
			if got.Rects[i] != want.Rects[i] {
				t.Fatalf("%s: rect %d = %+v, traced run had %+v", name, i, got.Rects[i], want.Rects[i])
			}
		}
		if got.Area != want.Area {
			t.Fatalf("%s: area %v, traced run had %v", name, got.Area, want.Area)
		}
	}

	// Rate-0 sampling shows up on the drop counter.
	var st StatsResponse
	getJSON(t, tsOut.URL+"/v1/stats", &st)
	if st.TraceDropped < 1 {
		t.Errorf("traceDropped = %d, want >= 1 at sample rate 0", st.TraceDropped)
	}
	if st.TraceSampled != 0 {
		t.Errorf("traceSampled = %d, want 0 at sample rate 0", st.TraceSampled)
	}
}

// TestUnknownTraceLookups: bad and unknown ids answer 400/404, not 500.
func TestUnknownTraceLookups(t *testing.T) {
	ts := tracedTestService(t)
	if resp := getJSON(t, ts.URL+"/debug/traces/zzzz", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed id: status %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/debug/traces/00000000000000ff", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", resp.StatusCode)
	}
}

// TestStatsRuntimeFields: the stats endpoint's runtime fields come from
// the same instruments as /metrics.
func TestStatsRuntimeFields(t *testing.T) {
	ts := tracedTestService(t)
	resp, err := http.Get(ts.URL + "/v1/query?method=fr&varrho=2&l=60")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptimeSeconds = %v, want > 0", st.UptimeSeconds)
	}
	if st.Goroutines < 1 {
		t.Errorf("goroutines = %d, want >= 1", st.Goroutines)
	}
	body := fetchMetrics(t, ts)
	for _, name := range []string{
		"pdr_go_goroutines", "pdr_go_heap_alloc_bytes", "pdr_process_uptime_seconds",
		"pdr_trace_sampled_total", "pdr_trace_store_entries",
	} {
		found := false
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"{") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("metric %s missing from exposition", name)
		}
	}
	if v := metricValue(body, "pdr_build_info"); v == "" {
		// build_info always carries labels.
		found := false
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, "pdr_build_info{") {
				found = true
				break
			}
		}
		if !found {
			t.Error("pdr_build_info missing from exposition")
		}
	}
}

// TestSlowQueryLogCap: beyond the cap, slow lines stop being written and
// the drop counter moves; the slow-queries counter keeps counting.
func TestSlowQueryLogCap(t *testing.T) {
	var log syncBuffer
	ts := tracedTestService(t,
		WithSlowQueryLog(time.Nanosecond, &log),
		WithSlowQueryCap(2))
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	var dropped string
	for {
		dropped = metricValue(fetchMetrics(t, ts), "pdr_http_slow_log_dropped_total")
		if dropped != "" && dropped != "0" || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	lines := 0
	sc := bufio.NewScanner(strings.NewReader(log.String()))
	for sc.Scan() {
		lines++
	}
	if lines > 2 {
		t.Errorf("cap 2 but %d lines written:\n%s", lines, log.String())
	}
	if dropped == "" || dropped == "0" {
		t.Errorf("pdr_http_slow_log_dropped_total = %q, want > 0", dropped)
	}
}
