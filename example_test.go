package pdr_test

import (
	"fmt"
	"log"

	"pdr"
)

// Example demonstrates the core loop: load objects, stream an update,
// answer an exact PDR query.
func Example() {
	srv, err := pdr.NewServer(pdr.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// A 10x10 block of vehicles near the center, crawling north-east.
	var states []pdr.State
	for i := 0; i < 100; i++ {
		states = append(states, pdr.State{
			ID:  pdr.ObjectID(i),
			Pos: pdr.Point{X: 495 + float64(i%10), Y: 495 + float64(i/10)},
			Vel: pdr.Vec{X: 0.2, Y: 0.2},
			Ref: 0,
		})
	}
	if err := srv.Load(states); err != nil {
		log.Fatal(err)
	}

	// Which regions will hold at least 50 vehicles per 30-mile square,
	// 10 ticks from now?
	rho := 50.0 / (30 * 30)
	res, err := srv.Snapshot(pdr.Query{Rho: rho, L: 30, At: 10}, pdr.FR)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dense: %v, area %.1f sq miles\n", len(res.Region) > 0, res.Region.Area())
	fmt.Printf("block center inside: %v\n", res.Region.Contains(pdr.Point{X: 501.5, Y: 501.5}))
	// Output:
	// dense: true, area 901.0 sq miles
	// block center inside: true
}

// ExampleServer_Interval shows the interval PDR query of Definition 5: the
// union of snapshot answers over a time range.
func ExampleServer_Interval() {
	srv, err := pdr.NewServer(pdr.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	var states []pdr.State
	for i := 0; i < 64; i++ {
		states = append(states, pdr.State{
			ID:  pdr.ObjectID(i),
			Pos: pdr.Point{X: 200 + float64(i%8), Y: 200 + float64(i/8)},
			Vel: pdr.Vec{X: 1, Y: 0}, // the cluster slides east
			Ref: 0,
		})
	}
	if err := srv.Load(states); err != nil {
		log.Fatal(err)
	}
	rho := 32.0 / (30 * 30)
	q := pdr.Query{Rho: rho, L: 30, At: 0}
	snap, _ := srv.Snapshot(q, pdr.FR)
	iv, err := srv.Interval(q, 20, pdr.FR)
	if err != nil {
		log.Fatal(err)
	}
	// The moving cluster smears the interval union eastward.
	fmt.Printf("interval wider than snapshot: %v\n", iv.Region.Area() > snap.Region.Area())
	// Output:
	// interval wider than snapshot: true
}

// ExampleRelativeThreshold converts the paper's relative thresholds.
func ExampleRelativeThreshold() {
	area := pdr.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	for _, varrho := range []float64{1, 5} {
		fmt.Printf("varrho=%g -> rho=%g\n", varrho, pdr.RelativeThreshold(500000, varrho, area))
	}
	// Output:
	// varrho=1 -> rho=0.5
	// varrho=5 -> rho=2.5
}
