package pdr_test

import (
	"testing"

	"pdr"
)

// TestFacadeEndToEnd exercises the public API exactly as the package doc
// advertises: build a server, load objects, stream updates, query.
func TestFacadeEndToEnd(t *testing.T) {
	srv, err := pdr.NewServer(pdr.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var states []pdr.State
	for i := 0; i < 400; i++ {
		states = append(states, pdr.State{
			ID:  pdr.ObjectID(i),
			Pos: pdr.Point{X: 480 + float64(i%20), Y: 480 + float64(i/20)},
			Vel: pdr.Vec{X: 0.1, Y: 0.1},
			Ref: 0,
		})
	}
	if err := srv.Load(states); err != nil {
		t.Fatal(err)
	}

	// Move one object via a delete+insert pair.
	old := states[0]
	if err := srv.Tick(1, []pdr.Update{
		pdr.NewDelete(old, 1),
		pdr.NewInsert(pdr.State{ID: old.ID, Pos: pdr.Point{X: 100, Y: 100}, Ref: 1}),
	}); err != nil {
		t.Fatal(err)
	}

	rho := pdr.RelativeThreshold(srv.NumObjects(), 3, srv.Config().Area)
	q := pdr.Query{Rho: rho, L: 30, At: srv.Now() + 10}
	res, err := srv.Snapshot(q, pdr.FR)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Region) == 0 {
		t.Fatal("expected a dense region around the 400-object block")
	}
	if !res.Region.Contains(pdr.Point{X: 490, Y: 490}) {
		t.Error("dense region must contain the block interior")
	}

	// The exact methods agree.
	bf, err := srv.Snapshot(q, pdr.BruteForce)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Region.DifferenceArea(bf.Region) + bf.Region.DifferenceArea(res.Region); d > 1e-6 {
		t.Errorf("FR and BruteForce differ by area %g", d)
	}
}

func TestRelativeThreshold(t *testing.T) {
	area := pdr.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	if got := pdr.RelativeThreshold(500000, 5, area); got != 2.5 {
		t.Errorf("RelativeThreshold = %g, want 2.5", got)
	}
}
