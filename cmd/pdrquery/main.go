// Command pdrquery loads a workload file produced by pdrgen and answers
// ad-hoc pointwise-dense-region queries with any of the paper's methods,
// printing the dense rectangles (or an ASCII density map).
//
// Usage:
//
//	pdrquery -data workload.jsonl -method fr -varrho 3 -l 60 [-at now+10] [-map]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pdr/internal/core"
	"pdr/internal/experiments"
	"pdr/internal/geom"
	"pdr/internal/motion"
	"pdr/internal/wire"
)

func main() {
	var (
		data    = flag.String("data", "", "workload file from pdrgen (required)")
		method  = flag.String("method", "fr", "query method: fr, pa, dh-opt, dh-pess, bf")
		varrho  = flag.Float64("varrho", 3, "relative density threshold (paper's 1..5)")
		l       = flag.Float64("l", 60, "neighborhood edge length")
		at      = flag.String("at", "now", "query timestamp: now, now+K, or an absolute tick")
		showMap = flag.Bool("map", false, "print an ASCII map of the dense region")
		rects   = flag.Bool("rects", false, "print every dense rectangle")
		plan    = flag.Bool("plan", false, "show the planner's method recommendation first")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "pdrquery: -data is required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := core.DefaultConfig()
	cfg.L = *l
	srv, err := core.NewServer(cfg)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*data)
	if err != nil {
		fatal(err)
	}
	records, err := wire.Replay(f, srv)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d records; %d live objects at tick %d\n", records, srv.NumObjects(), srv.Now())

	qt, err := parseAt(*at, srv.Now())
	if err != nil {
		fatal(err)
	}
	m, err := parseMethod(*method)
	if err != nil {
		fatal(err)
	}
	rho := experiments.RelRho(srv.NumObjects(), *varrho, cfg.Area)
	if *plan {
		p, err := srv.Recommend(core.Query{Rho: rho, L: *l, At: qt}, true)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("planner: %s — %s\n", p.Method, p.Reason)
	}
	res, err := srv.Snapshot(core.Query{Rho: rho, L: *l, At: qt}, m)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("method=%s rho=%.6g l=%g qt=%d\n", res.Method, rho, *l, qt)
	fmt.Printf("dense region: %d rects, area %.1f (%.3f%% of the plane)\n",
		len(res.Region), res.Region.Area(), 100*res.Region.Area()/cfg.Area.Area())
	fmt.Printf("cost: cpu=%v ios=%d io-time=%v total=%v\n", res.CPU, res.IOs, res.IOTime, res.Total())
	if res.Method == core.FR {
		fmt.Printf("filter: accepted=%d rejected=%d candidates=%d objects-retrieved=%d\n",
			res.Accepted, res.Rejected, res.Candidates, res.ObjectsRetrieved)
	}
	if *rects {
		for _, r := range res.Region {
			fmt.Println(" ", r)
		}
	}
	if *showMap {
		printMap(os.Stdout, res.Region, cfg.Area, 60, 30)
	}
}

func parseAt(s string, now motion.Tick) (motion.Tick, error) {
	switch {
	case s == "now":
		return now, nil
	case strings.HasPrefix(s, "now+"):
		k, err := strconv.Atoi(s[len("now+"):])
		if err != nil {
			return 0, fmt.Errorf("bad -at %q", s)
		}
		return now + motion.Tick(k), nil
	default:
		k, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("bad -at %q", s)
		}
		return motion.Tick(k), nil
	}
}

func parseMethod(s string) (core.Method, error) {
	switch strings.ToLower(s) {
	case "fr":
		return core.FR, nil
	case "pa":
		return core.PA, nil
	case "dh-opt", "dhopt":
		return core.DHOptimistic, nil
	case "dh-pess", "dhpess":
		return core.DHPessimistic, nil
	case "bf", "bruteforce":
		return core.BruteForce, nil
	default:
		return 0, fmt.Errorf("unknown method %q", s)
	}
}

// printMap renders the dense region as a w x h ASCII grid.
func printMap(out *os.File, region geom.Region, area geom.Rect, w, h int) {
	for row := h - 1; row >= 0; row-- {
		var sb strings.Builder
		for col := 0; col < w; col++ {
			p := geom.Point{
				X: area.MinX + (float64(col)+0.5)*area.Width()/float64(w),
				Y: area.MinY + (float64(row)+0.5)*area.Height()/float64(h),
			}
			if region.Contains(p) {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		fmt.Fprintln(out, sb.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdrquery:", err)
	os.Exit(1)
}
