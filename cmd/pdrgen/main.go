// Command pdrgen generates a moving-object workload — initial states plus a
// per-tick location-update stream — and writes it as JSON lines (see
// internal/wire) for consumption by pdrquery or external tools.
//
// Usage:
//
//	pdrgen -n 10000 -ticks 30 -seed 1 [-uniform] -o workload.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pdr/internal/datagen"
	"pdr/internal/motion"
	"pdr/internal/wire"
)

func main() {
	var (
		n       = flag.Int("n", 10000, "number of moving objects")
		ticks   = flag.Int("ticks", 30, "ticks of update stream to generate")
		seed    = flag.Int64("seed", 1, "workload seed")
		uniform = flag.Bool("uniform", false, "uniform linear movement instead of the road network")
		out     = flag.String("o", "-", "output file (- for stdout)")
	)
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	cfg := datagen.DefaultConfig(*n)
	cfg.Seed = *seed
	cfg.Uniform = *uniform
	g, err := datagen.New(cfg)
	if err != nil {
		fatal(err)
	}

	ww := wire.NewWriter(w)
	for _, s := range g.InitialStates() {
		must(ww.Write(wire.FromState(wire.KindState, s, 0)))
	}
	updates := 0
	for t := 0; t < *ticks; t++ {
		ups := g.Advance()
		must(ww.Write(wire.Record{Kind: wire.KindTick, Tick: int64(g.Now())}))
		for _, u := range ups {
			kind := wire.KindInsert
			if u.Kind == motion.Delete {
				kind = wire.KindDelete
			}
			must(ww.Write(wire.FromState(kind, u.State, u.At)))
			updates++
		}
	}
	must(ww.Flush())
	fmt.Fprintf(os.Stderr, "pdrgen: wrote %d objects, %d ticks, %d updates\n", *n, *ticks, updates)
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdrgen:", err)
	os.Exit(1)
}
