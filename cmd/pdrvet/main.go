// Command pdrvet runs the project's static-analysis suite (internal/lint)
// over the module: stdlib-only analyzers that enforce the PDR engine's
// conventions the compiler cannot check. See docs/LINT.md.
//
// Usage:
//
//	pdrvet [-only floateq,locked] [-json] [-list] [-graph] [-fix [-dry]] [-timing] [patterns]
//
// Patterns are module-relative ("./...", "./internal/geom", or full import
// paths like "pdr/internal/service"); with none, or with "./...", the whole
// module is analyzed. -json switches the diagnostic stream to one JSON
// object per line for machine consumption. -graph dumps the pdr:hot call
// graph instead of running analyzers. -fix applies the suggested fixes
// attached to findings (atomically per file, gofmt-checked); -fix -dry
// prints the unified diffs without writing. -timing appends per-analyzer
// wall time: a stderr table, or — with -json — one
// {"analyzer":...,"timingMicros":...} line per analyzer after the
// diagnostic stream. Exits 1 when findings remain
// after lint:ignore suppression, 2 on load/usage errors. Load errors are
// tolerant: a package that fails to parse or type-check is reported on
// stderr, the remaining packages are still analyzed and their findings
// printed, and the exit status is 2.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pdr/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process edges (args, stdio, exit status) made
// testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pdrvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only     = fs.String("only", "", "comma-separated analyzer subset to run")
		list     = fs.Bool("list", false, "list analyzers and exit")
		asJSON   = fs.Bool("json", false, "emit diagnostics as one JSON object per line")
		rootFlag = fs.String("root", ".", "module root (directory containing go.mod)")
		graph    = fs.Bool("graph", false, "dump the pdr:hot call graph and exit")
		fix      = fs.Bool("fix", false, "apply suggested fixes (atomic per file, gofmt-checked)")
		dry      = fs.Bool("dry", false, "with -fix: print unified diffs instead of writing")
		timing   = fs.Bool("timing", false, "report per-analyzer wall time (stderr table, or timingMicros lines with -json)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dry && !*fix {
		fmt.Fprintln(stderr, "pdrvet: -dry requires -fix")
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*only, ","))
		if err != nil {
			fmt.Fprintln(stderr, "pdrvet:", err)
			return 2
		}
	}

	mod, err := lint.LoadModule(*rootFlag)
	if err != nil {
		fmt.Fprintln(stderr, "pdrvet:", err)
		return 2
	}
	pkgs, loadErrs := load(mod, fs.Args())
	for _, e := range loadErrs {
		fmt.Fprintln(stderr, "pdrvet:", e)
	}
	if len(pkgs) == 0 && len(loadErrs) > 0 {
		return 2
	}

	if *graph {
		if err := lint.BuildGraph(pkgs).Dump(stdout); err != nil {
			fmt.Fprintln(stderr, "pdrvet:", err)
			return 2
		}
		if len(loadErrs) > 0 {
			return 2
		}
		return 0
	}

	diags, timings := lint.RunTimed(pkgs, analyzers)
	if *timing {
		if *asJSON && !*fix {
			defer func() {
				if err := lint.WriteJSONTimings(stdout, timings); err != nil {
					fmt.Fprintln(stderr, "pdrvet:", err)
				}
			}()
		} else {
			defer writeTimingTable(stderr, timings)
		}
	}

	if *fix {
		sum, err := lint.ApplyFixes(diags, *dry, stdout)
		if err != nil {
			fmt.Fprintln(stderr, "pdrvet:", err)
			return 2
		}
		verb := "fixed"
		if *dry {
			verb = "fixable"
		}
		fmt.Fprintf(stderr, "pdrvet: %d finding(s), %d %s in %d file(s), %d fix(es) skipped\n",
			len(diags), sum.Applied, verb, len(sum.Files), sum.Skipped)
		if *dry {
			if len(loadErrs) > 0 {
				return 2
			}
			// Dry mode gates CI: any applicable fix means the tree is not
			// clean.
			if sum.Applied > 0 {
				return 1
			}
			return 0
		}
		// After applying, the remaining findings are those without fixes.
		if len(loadErrs) > 0 {
			return 2
		}
		if len(diags) > sum.Applied {
			return 1
		}
		return 0
	}

	if *asJSON {
		if err := lint.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "pdrvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(stderr, "pdrvet: %d finding(s)\n", n)
		if len(loadErrs) > 0 {
			return 2
		}
		return 1
	}
	if len(loadErrs) > 0 {
		return 2
	}
	return 0
}

// writeTimingTable prints per-analyzer wall time, in registration order, as
// a human-readable stderr table (diagnostics own stdout).
func writeTimingTable(w io.Writer, timings []lint.AnalyzerTiming) {
	var total int64
	fmt.Fprintln(w, "pdrvet: per-analyzer wall time:")
	for _, t := range timings {
		us := t.Duration.Microseconds()
		total += us
		fmt.Fprintf(w, "  %-14s %8dµs\n", t.Name, us)
	}
	fmt.Fprintf(w, "  %-14s %8dµs\n", "total", total)
}

// load resolves command-line patterns to packages. "./..." (or no
// patterns) loads the whole module; "dir/..." loads the subtree; other
// patterns load a single package by module-relative path or import path.
// Packages that fail to load surface as errors without suppressing the
// rest.
func load(mod *lint.Module, patterns []string) ([]*lint.Package, []error) {
	all, errs := mod.LoadAll()
	if len(patterns) == 0 {
		return all, errs
	}
	var out []*lint.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		matched := false
		for _, pkg := range all {
			if matchPattern(mod, pat, pkg.Path) {
				matched = true
				if !seen[pkg.Path] {
					seen[pkg.Path] = true
					out = append(out, pkg)
				}
			}
		}
		if !matched {
			errs = append(errs, fmt.Errorf("pattern %q matched no packages", pat))
		}
	}
	return out, errs
}

func matchPattern(mod *lint.Module, pat, pkgPath string) bool {
	pat = strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/")
	if pat == "" || pat == "." {
		pat = "..."
	}
	// Normalize module-relative patterns to import paths.
	if !strings.HasPrefix(pat, mod.Path) {
		if pat == "..." {
			pat = mod.Path + "/..."
		} else {
			pat = mod.Path + "/" + pat
		}
	}
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		return pkgPath == rest || strings.HasPrefix(pkgPath, rest+"/")
	}
	return pkgPath == pat
}
