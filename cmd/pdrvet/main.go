// Command pdrvet runs the project's static-analysis suite (internal/lint)
// over the module: stdlib-only analyzers that enforce the PDR engine's
// conventions the compiler cannot check. See docs/LINT.md.
//
// Usage:
//
//	pdrvet [-only floateq,locked] [-list] [patterns]
//
// Patterns are module-relative ("./...", "./internal/geom", or full import
// paths like "pdr/internal/service"); with none, or with "./...", the whole
// module is analyzed. Exits 1 when findings remain after lint:ignore
// suppression, 2 on load/usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pdr/internal/lint"
)

func main() {
	var (
		only = flag.String("only", "", "comma-separated analyzer subset to run")
		list = flag.Bool("list", false, "list analyzers and exit")
		root = flag.String("root", ".", "module root (directory containing go.mod)")
	)
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*only, ","))
		if err != nil {
			fatal(err)
		}
	}

	mod, err := lint.LoadModule(*root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := load(mod, flag.Args())
	if err != nil {
		fatal(err)
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "pdrvet: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// load resolves command-line patterns to packages. "./..." (or no
// patterns) loads the whole module; "dir/..." loads the subtree; other
// patterns load a single package by module-relative path or import path.
func load(mod *lint.Module, patterns []string) ([]*lint.Package, error) {
	all, err := mod.LoadAll()
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		return all, nil
	}
	var out []*lint.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		matched := false
		for _, pkg := range all {
			if matchPattern(mod, pat, pkg.Path) {
				matched = true
				if !seen[pkg.Path] {
					seen[pkg.Path] = true
					out = append(out, pkg)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return out, nil
}

func matchPattern(mod *lint.Module, pat, pkgPath string) bool {
	pat = strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/")
	if pat == "" || pat == "." {
		pat = "..."
	}
	// Normalize module-relative patterns to import paths.
	if !strings.HasPrefix(pat, mod.Path) {
		if pat == "..." {
			pat = mod.Path + "/..."
		} else {
			pat = mod.Path + "/" + pat
		}
	}
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		return pkgPath == rest || strings.HasPrefix(pkgPath, rest+"/")
	}
	return pkgPath == pat
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdrvet:", err)
	os.Exit(2)
}
