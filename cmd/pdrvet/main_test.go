package main

import (
	"bytes"
	"encoding/json"
	"go/format"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdr/internal/lint"
)

// writeModule lays out a throwaway module under t.TempDir().
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestUnknownAnalyzerExits2WithInventory(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-only", "nosuch"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	msg := stderr.String()
	if !strings.Contains(msg, `unknown analyzer "nosuch"`) {
		t.Errorf("stderr does not name the bad analyzer: %q", msg)
	}
	// The inventory must be in the error so a typo is self-diagnosing.
	for _, name := range lint.Names() {
		if !strings.Contains(msg, name) {
			t.Errorf("stderr inventory is missing %q: %q", name, msg)
		}
	}
}

func TestListMatchesRegistry(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	names := lint.Names()
	if len(lines) != len(names) {
		t.Fatalf("-list printed %d analyzers, registry has %d", len(lines), len(names))
	}
	for i, line := range lines {
		if got := strings.Fields(line)[0]; got != names[i] {
			t.Errorf("-list line %d = %q, want analyzer %q", i, got, names[i])
		}
	}
}

func TestJSONOutputRoundTrips(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"eq.go":  "package tmpmod\n\nfunc cmp(a, b float64) bool { return a == b }\n",
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", dir, "-json", "-only", "floateq"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (one finding): stderr=%s", code, stderr.String())
	}
	diags, err := lint.ReadJSON(&stdout)
	if err != nil {
		t.Fatalf("round-trip decode: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("decoded %d diagnostics, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "floateq" || d.Line != 3 || d.Col == 0 || !strings.HasSuffix(d.File, "eq.go") || d.Message == "" {
		t.Errorf("decoded diagnostic has wrong fields: %+v", d)
	}
}

func TestHumanAndJSONAgree(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"eq.go":  "package tmpmod\n\nfunc cmp(a, b float64) bool { return a == b }\n",
	})
	var human, jsonOut, stderr bytes.Buffer
	run([]string{"-root", dir, "-only", "floateq"}, &human, &stderr)
	run([]string{"-root", dir, "-json", "-only", "floateq"}, &jsonOut, &stderr)
	diags, err := lint.ReadJSON(&jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(human.String(), diags[0].Message) {
		t.Errorf("human output %q does not carry the JSON message %+v", human.String(), diags)
	}
}

// TestBrokenPackageDoesNotSuppressOthers pins the tolerant-load contract:
// a package with a syntax error exits 2 and is reported on stderr, but the
// healthy package's findings still come out.
func TestBrokenPackageDoesNotSuppressOthers(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":       "module tmpmod\n\ngo 1.22\n",
		"bad/bad.go":   "package bad\n\nfunc oops( {\n",
		"good/good.go": "package good\n\nfunc cmp(a, b float64) bool { return a == b }\n",
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", dir, "-only", "floateq"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (load error): stderr=%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "bad") {
		t.Errorf("stderr does not mention the broken package: %q", stderr.String())
	}
	if !strings.Contains(stdout.String(), "floateq") {
		t.Errorf("healthy package's finding was suppressed: stdout=%q", stdout.String())
	}
}

func TestNoMatchPatternExits2(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"ok.go":  "package tmpmod\n",
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", dir, "./nosuchdir"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2: stderr=%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "matched no packages") {
		t.Errorf("stderr missing pattern error: %q", stderr.String())
	}
}

// hotModule is a throwaway module with one auto-fixable hot-path finding:
// an un-preallocated append in a loop reachable from a pdr:hot root.
func hotModule(t *testing.T) string {
	return writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"hot.go": `package tmpmod

// pdr:hot
func Double(points []float64) []float64 {
	var out []float64
	for _, p := range points {
		out = append(out, p*2)
	}
	return out
}
`,
	})
}

func TestFixAppliesPreallocAndRoundTripsGofmt(t *testing.T) {
	dir := hotModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", dir, "-only", "hotalloc", "-fix"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("-fix exit code = %d, want 0 (every finding fixed): stderr=%s", code, stderr.String())
	}
	src, err := os.ReadFile(filepath.Join(dir, "hot.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "out := make([]float64, 0, len(points))") {
		t.Fatalf("prealloc fix not applied:\n%s", src)
	}
	formatted, err := format.Source(src)
	if err != nil {
		t.Fatalf("fixed file does not parse: %v", err)
	}
	if !bytes.Equal(formatted, src) {
		t.Errorf("fixed file is not gofmt-clean:\n%s", src)
	}
	// The tree is now finding-free: the fix round-trips through the
	// analyzer that suggested it.
	var out2, err2 bytes.Buffer
	if code := run([]string{"-root", dir, "-only", "hotalloc"}, &out2, &err2); code != 0 {
		t.Errorf("re-run after -fix exits %d, want 0: %s%s", code, out2.String(), err2.String())
	}
}

func TestFixDryPrintsDiffWritesNothing(t *testing.T) {
	dir := hotModule(t)
	before, err := os.ReadFile(filepath.Join(dir, "hot.go"))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", dir, "-only", "hotalloc", "-fix", "-dry"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("-fix -dry exit code = %d, want 1 (fixable findings gate): stderr=%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "@@") || !strings.Contains(out, "-\tvar out []float64") ||
		!strings.Contains(out, "+\tout := make([]float64, 0, len(points))") {
		t.Errorf("dry run did not print the unified diff:\n%s", out)
	}
	after, err := os.ReadFile(filepath.Join(dir, "hot.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Errorf("-dry modified the file")
	}
}

func TestFixDryCleanTreeExits0(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"ok.go":  "package tmpmod\n\nfunc F() {}\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", dir, "-fix", "-dry"}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean tree -fix -dry exit = %d, want 0: %s", code, stderr.String())
	}
}

func TestDryWithoutFixExits2(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dry"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-dry alone exit = %d, want 2", code)
	}
}

func TestGraphDumpShowsHotReachability(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"g.go": `package tmpmod

// pdr:hot
func Entry() { step() }

func step() {}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", dir, "-graph"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-graph exit = %d, want 0: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"root tmpmod.Entry", "hot  tmpmod.step", "-> tmpmod.step"} {
		if !strings.Contains(out, want) {
			t.Errorf("-graph output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONCarriesPkgAndFixes(t *testing.T) {
	dir := hotModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", dir, "-json", "-only", "hotalloc"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1: %s", code, stderr.String())
	}
	diags, err := lint.ReadJSON(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("decoded %d diagnostics, want 1", len(diags))
	}
	d := diags[0]
	if d.Pkg != "tmpmod" {
		t.Errorf("pkg = %q, want tmpmod", d.Pkg)
	}
	if len(d.Fixes) != 1 || len(d.Fixes[0].Edits) != 1 {
		t.Fatalf("json diagnostic lost the suggested fix: %+v", d)
	}
	if e := d.Fixes[0].Edits[0]; e.NewText == "" || e.End <= e.Start {
		t.Errorf("fix edit not serialized: %+v", e)
	}
}

// poolModule is a throwaway module with one fixable finding of each
// poollife fix family: a Put with an uncleared pointer field and an
// unclipped pooled-scratch return.
func poolModule(t *testing.T) string {
	return writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"pool.go": `package tmpmod

import "sync"

type node struct {
	buf  []float64
	next *node
}

var nodes = sync.Pool{New: func() any { return new(node) }}

func Recycle(n *node) {
	nodes.Put(n)
}

func Dedup(s []float64) []float64 {
	out := s[:0]
	for _, v := range s {
		out = append(out, v)
	}
	return out
}
`,
	})
}

// TestFixDryPoolLifeDiffs pins the -fix -dry diffs for both poollife fix
// families: nil-before-Put inserts the clear, cap-clip rewrites the return.
func TestFixDryPoolLifeDiffs(t *testing.T) {
	dir := poolModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", dir, "-only", "poollife", "-fix", "-dry"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("-fix -dry exit = %d, want 1: stderr=%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"+\tn.next = nil",
		"-\treturn out",
		"+\treturn out[:len(out):len(out)]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dry diff missing %q:\n%s", want, out)
		}
	}
}

// TestFixAppliesPoolLifeAndRoundTrips applies both poollife fixes and
// re-runs the analyzer to prove the fixed tree is clean and gofmt-stable.
func TestFixAppliesPoolLifeAndRoundTrips(t *testing.T) {
	dir := poolModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", dir, "-only", "poollife", "-fix"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("-fix exit = %d, want 0: stderr=%s", code, stderr.String())
	}
	src, err := os.ReadFile(filepath.Join(dir, "pool.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "n.next = nil") || !strings.Contains(string(src), "out[:len(out):len(out)]") {
		t.Fatalf("poollife fixes not applied:\n%s", src)
	}
	formatted, err := format.Source(src)
	if err != nil {
		t.Fatalf("fixed file does not parse: %v", err)
	}
	if !bytes.Equal(formatted, src) {
		t.Errorf("fixed file is not gofmt-clean:\n%s", src)
	}
	var out2, err2 bytes.Buffer
	if code := run([]string{"-root", dir, "-only", "poollife"}, &out2, &err2); code != 0 {
		t.Errorf("re-run after -fix exits %d, want 0: %s%s", code, out2.String(), err2.String())
	}
}

// TestTimingTableListsEveryAnalyzer pins the -timing contract: one stderr
// row per registered analyzer, in registration order, plus a total.
func TestTimingTableListsEveryAnalyzer(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"ok.go":  "package tmpmod\n\nfunc F() {}\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-root", dir, "-timing"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-timing exit = %d, want 0: %s", code, stderr.String())
	}
	msg := stderr.String()
	for _, name := range lint.Names() {
		if !strings.Contains(msg, name) {
			t.Errorf("timing table is missing analyzer %q:\n%s", name, msg)
		}
	}
	if !strings.Contains(msg, "total") {
		t.Errorf("timing table has no total row:\n%s", msg)
	}
}

// TestTimingJSONEmitsTimingMicros pins the machine shape: with -json every
// registered analyzer gets a {"analyzer":...,"timingMicros":...} line after
// the diagnostic stream, and diagnostics stay decodable.
func TestTimingJSONEmitsTimingMicros(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"eq.go":  "package tmpmod\n\nfunc cmp(a, b float64) bool { return a == b }\n",
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", dir, "-json", "-timing"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (one finding): %s", code, stderr.String())
	}
	timed := make(map[string]bool)
	sawDiag := false
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		var rec struct {
			Analyzer     string `json:"analyzer"`
			TimingMicros *int64 `json:"timingMicros"`
			File         string `json:"file"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON line %q: %v", line, err)
		}
		if rec.TimingMicros != nil {
			timed[rec.Analyzer] = true
		} else if rec.File != "" {
			sawDiag = true
		}
	}
	if !sawDiag {
		t.Error("diagnostic line missing from -json -timing stream")
	}
	for _, name := range lint.Names() {
		if !timed[name] {
			t.Errorf("no timingMicros line for analyzer %q:\n%s", name, stdout.String())
		}
	}
}
