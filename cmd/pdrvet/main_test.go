package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdr/internal/lint"
)

// writeModule lays out a throwaway module under t.TempDir().
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestUnknownAnalyzerExits2WithInventory(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-only", "nosuch"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	msg := stderr.String()
	if !strings.Contains(msg, `unknown analyzer "nosuch"`) {
		t.Errorf("stderr does not name the bad analyzer: %q", msg)
	}
	// The inventory must be in the error so a typo is self-diagnosing.
	for _, name := range lint.Names() {
		if !strings.Contains(msg, name) {
			t.Errorf("stderr inventory is missing %q: %q", name, msg)
		}
	}
}

func TestListMatchesRegistry(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	names := lint.Names()
	if len(lines) != len(names) {
		t.Fatalf("-list printed %d analyzers, registry has %d", len(lines), len(names))
	}
	for i, line := range lines {
		if got := strings.Fields(line)[0]; got != names[i] {
			t.Errorf("-list line %d = %q, want analyzer %q", i, got, names[i])
		}
	}
}

func TestJSONOutputRoundTrips(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"eq.go":  "package tmpmod\n\nfunc cmp(a, b float64) bool { return a == b }\n",
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", dir, "-json", "-only", "floateq"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (one finding): stderr=%s", code, stderr.String())
	}
	diags, err := lint.ReadJSON(&stdout)
	if err != nil {
		t.Fatalf("round-trip decode: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("decoded %d diagnostics, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "floateq" || d.Line != 3 || d.Col == 0 || !strings.HasSuffix(d.File, "eq.go") || d.Message == "" {
		t.Errorf("decoded diagnostic has wrong fields: %+v", d)
	}
}

func TestHumanAndJSONAgree(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"eq.go":  "package tmpmod\n\nfunc cmp(a, b float64) bool { return a == b }\n",
	})
	var human, jsonOut, stderr bytes.Buffer
	run([]string{"-root", dir, "-only", "floateq"}, &human, &stderr)
	run([]string{"-root", dir, "-json", "-only", "floateq"}, &jsonOut, &stderr)
	diags, err := lint.ReadJSON(&jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(human.String(), diags[0].Message) {
		t.Errorf("human output %q does not carry the JSON message %+v", human.String(), diags)
	}
}

// TestBrokenPackageDoesNotSuppressOthers pins the tolerant-load contract:
// a package with a syntax error exits 2 and is reported on stderr, but the
// healthy package's findings still come out.
func TestBrokenPackageDoesNotSuppressOthers(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":       "module tmpmod\n\ngo 1.22\n",
		"bad/bad.go":   "package bad\n\nfunc oops( {\n",
		"good/good.go": "package good\n\nfunc cmp(a, b float64) bool { return a == b }\n",
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", dir, "-only", "floateq"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (load error): stderr=%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "bad") {
		t.Errorf("stderr does not mention the broken package: %q", stderr.String())
	}
	if !strings.Contains(stdout.String(), "floateq") {
		t.Errorf("healthy package's finding was suppressed: stdout=%q", stdout.String())
	}
}

func TestNoMatchPatternExits2(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"ok.go":  "package tmpmod\n",
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-root", dir, "./nosuchdir"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2: stderr=%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "matched no packages") {
		t.Errorf("stderr missing pattern error: %q", stderr.String())
	}
}
