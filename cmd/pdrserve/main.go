// Command pdrserve runs the PDR engine as an HTTP service (see
// internal/service for the API). It can start empty or pre-load a workload
// file produced by pdrgen.
//
// Usage:
//
//	pdrserve -addr :8080 [-data workload.jsonl] [-l 30] [-histm 100]
//
// Example session:
//
//	pdrgen -n 20000 -ticks 10 -o wl.jsonl
//	pdrserve -data wl.jsonl &
//	curl 'localhost:8080/v1/query?method=fr&varrho=3&l=30&at=now%2B10'
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pdr/internal/core"
	"pdr/internal/service"
	"pdr/internal/wire"
)

func main() {
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		data  = flag.String("data", "", "optional workload file from pdrgen to pre-load")
		l     = flag.Float64("l", 30, "fixed neighborhood edge for the PA surfaces")
		histM = flag.Int("histm", 100, "density histogram resolution per axis")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.L = *l
	cfg.HistM = *histM
	cfg.KeepHistory = true // the /v1/past audit endpoint needs the archive
	svc, err := service.New(cfg)
	if err != nil {
		log.Fatal("pdrserve: ", err)
	}
	if *data != "" {
		f, err := os.Open(*data)
		if err != nil {
			log.Fatal("pdrserve: ", err)
		}
		n, err := wire.Replay(f, svc.Engine())
		f.Close()
		if err != nil {
			log.Fatal("pdrserve: ", err)
		}
		fmt.Fprintf(os.Stderr, "pdrserve: pre-loaded %d records\n", n)
	}
	fmt.Fprintf(os.Stderr, "pdrserve: listening on %s\n", *addr)
	log.Fatal(svc.ListenAndServe(*addr))
}
