// Command pdrserve runs the PDR engine as an HTTP service (see
// internal/service for the API). It can start empty or pre-load a workload
// file produced by pdrgen.
//
// Usage:
//
//	pdrserve -addr :8080 [-data workload.jsonl] [-l 30] [-histm 100]
//	         [-workers 0] [-shards 1] [-cache-bytes 67108864]
//	         [-slow-query 250ms] [-slow-query-max 10000] [-trace-sample 1.0]
//	         [-trace-buffer 256] [-debug-addr localhost:6060]
//
// Example session:
//
//	pdrgen -n 20000 -ticks 10 -o wl.jsonl
//	pdrserve -data wl.jsonl &
//	curl 'localhost:8080/v1/query?method=fr&varrho=3&l=30&at=now%2B10'
//	curl 'localhost:8080/metrics'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"pdr/internal/core"
	"pdr/internal/service"
	"pdr/internal/shard"
	"pdr/internal/wire"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		data      = flag.String("data", "", "optional workload file from pdrgen to pre-load")
		l         = flag.Float64("l", 30, "fixed neighborhood edge for the PA surfaces")
		histM     = flag.Int("histm", 100, "density histogram resolution per axis")
		workers   = flag.Int("workers", 0, "query worker-pool size: 0 = GOMAXPROCS, 1 = sequential")
		shards    = flag.Int("shards", 1, "spatial shards: 1 = single-lock engine; >1 partitions the plane so writes lock only the owning shard (answers are identical; see docs/PERFORMANCE.md \"Sharding\")")
		cacheB    = flag.Int64("cache-bytes", 0, "result-cache budget in bytes: repeated/interval/monitor queries reuse per-timestamp answers until the next update (0 disables)")
		slowQuery = flag.Duration("slow-query", 0, "log requests slower than this as JSON lines on stderr (0 disables)")
		slowMax   = flag.Int64("slow-query-max", 0, "cap the slow-query log at this many lines; further slow requests only count on pdr_http_slow_log_dropped_total (0 = unbounded)")
		traceRate = flag.Float64("trace-sample", 1.0, "head-sampling probability for request traces in [0,1]; sampled requests carry X-Pdr-Trace-Id and appear under /debug/traces")
		traceBuf  = flag.Int("trace-buffer", service.DefaultTraceBuffer, "in-memory trace store capacity in traces (0 disables tracing entirely)")
		debugAddr = flag.String("debug-addr", "", "optional separate listen address for net/http/pprof (e.g. localhost:6060)")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.L = *l
	cfg.HistM = *histM
	cfg.Workers = *workers
	cfg.CacheBytes = *cacheB
	cfg.KeepHistory = true // the /v1/past audit endpoint needs the archive
	var opts []service.Option
	if *slowQuery > 0 {
		opts = append(opts, service.WithSlowQueryLog(*slowQuery, os.Stderr))
	}
	if *slowMax > 0 {
		opts = append(opts, service.WithSlowQueryCap(*slowMax))
	}
	opts = append(opts, service.WithTracing(*traceRate, *traceBuf))
	var svc *service.Service
	var err error
	if *shards > 1 {
		eng, serr := shard.New(cfg, *shards)
		if serr != nil {
			log.Fatal("pdrserve: ", serr)
		}
		svc, err = service.NewWithEngine(eng, opts...)
	} else {
		svc, err = service.New(cfg, opts...)
	}
	if err != nil {
		log.Fatal("pdrserve: ", err)
	}
	if *data != "" {
		f, err := os.Open(*data)
		if err != nil {
			log.Fatal("pdrserve: ", err)
		}
		n, err := wire.Replay(f, svc.Engine())
		f.Close()
		if err != nil {
			log.Fatal("pdrserve: ", err)
		}
		fmt.Fprintf(os.Stderr, "pdrserve: pre-loaded %d records\n", n)
	}
	if *debugAddr != "" {
		// pprof lives on its own mux and listener so profiling endpoints are
		// never reachable through the public API address.
		//
		// lint:ignore noleak process-lifetime daemon: the debug listener
		// serves until the process exits and log.Fatal ends it on error.
		go func() {
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			dbg := &http.Server{Addr: *debugAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
			fmt.Fprintf(os.Stderr, "pdrserve: pprof on %s/debug/pprof/\n", *debugAddr)
			log.Fatal("pdrserve: debug server: ", dbg.ListenAndServe())
		}()
	}
	fmt.Fprintf(os.Stderr, "pdrserve: listening on %s\n", *addr)
	log.Fatal(svc.ListenAndServe(*addr))
}
