// Command pdrviz renders a PDR query answer over a workload snapshot as an
// SVG — the repository's equivalent of the paper's Fig. 7 plots.
//
// Usage:
//
//	pdrgen -n 10000 -ticks 5 -o wl.jsonl
//	pdrviz -data wl.jsonl -method fr -varrho 3 -l 60 -o dense.svg
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pdr/internal/core"
	"pdr/internal/experiments"
	"pdr/internal/motion"
	"pdr/internal/viz"
	"pdr/internal/wire"
)

func main() {
	var (
		data    = flag.String("data", "", "workload file from pdrgen (required)")
		method  = flag.String("method", "fr", "query method: fr, pa, dh-opt, dh-pess, bf")
		varrho  = flag.Float64("varrho", 3, "relative density threshold")
		l       = flag.Float64("l", 60, "neighborhood edge length")
		ahead   = flag.Int("ahead", 10, "forecast this many ticks ahead")
		width   = flag.Int("width", 800, "canvas width in pixels")
		contour = flag.Bool("contour", true, "overlay an iso-density contour at the threshold")
		objects = flag.Bool("objects", true, "plot object positions")
		out     = flag.String("o", "-", "output SVG file (- for stdout)")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "pdrviz: -data is required")
		os.Exit(2)
	}

	cfg := core.DefaultConfig()
	cfg.L = *l
	srv, err := core.NewServer(cfg)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*data)
	if err != nil {
		fatal(err)
	}
	if _, err := wire.Replay(f, srv); err != nil {
		f.Close()
		fatal(err)
	}
	f.Close()

	m, err := parseMethod(*method)
	if err != nil {
		fatal(err)
	}
	qt := srv.Now() + motion.Tick(*ahead)
	rho := experiments.RelRho(srv.NumObjects(), *varrho, cfg.Area)
	res, err := srv.Snapshot(core.Query{Rho: rho, L: *l, At: qt}, m)
	if err != nil {
		fatal(err)
	}

	scene := &viz.Scene{
		Area:   cfg.Area,
		Width:  *width,
		Title:  fmt.Sprintf("PDR %s: rho=%.4g l=%g t=%d (%d rects)", res.Method, rho, *l, qt, len(res.Region)),
		Region: res.Region,
		Rings:  res.Region.Outline(),
	}
	if *objects {
		for _, st := range srv.Index().All() {
			p := st.PositionAt(qt)
			if cfg.Area.Contains(p) {
				scene.Points = append(scene.Points, p)
			}
		}
	}
	if *contour {
		segs, err := srv.Surface().Contours(qt, rho, 128)
		if err == nil {
			for _, s := range segs {
				scene.Contours = append(scene.Contours, viz.Segment{A: s.A, B: s.B})
			}
		}
	}

	w := io.Writer(os.Stdout)
	if *out != "-" {
		of, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer of.Close()
		w = of
	}
	if err := scene.WriteSVG(w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pdrviz: %d rects, %d rings, %d contour segments, %d objects\n",
		len(scene.Region), len(scene.Rings), len(scene.Contours), len(scene.Points))
}

func parseMethod(s string) (core.Method, error) {
	switch s {
	case "fr":
		return core.FR, nil
	case "pa":
		return core.PA, nil
	case "dh-opt":
		return core.DHOptimistic, nil
	case "dh-pess":
		return core.DHPessimistic, nil
	case "bf":
		return core.BruteForce, nil
	default:
		return 0, fmt.Errorf("unknown method %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdrviz:", err)
	os.Exit(1)
}
