// Command pdrload is the production load harness: it drives a running
// pdrserve over persistent connections with a configurable mix of
// snapshot / interval / stats reads and tick / apply writes and reports
// throughput plus a log-scale latency distribution (p50/p90/p95/p99/max),
// overall and per class. The write classes exist to measure write-vs-read
// contention: "apply" exercises the shard-local write path (POST /v1/apply,
// insert+delete of a fresh object), "tick" the global clock-advance path
// (POST /v1/updates).
//
// Usage:
//
//	pdrload -url http://localhost:8080 [-c 8] [-duration 10s] [-warmup 2s]
//	        [-n 0] [-mix snapshot=8,interval=1,stats=1,apply=4] [-method fr]
//	        [-l 30] [-varrho 3] [-interval-ticks 5] [-area-x 1000]
//	        [-area-y 1000] [-seed 1] [-timeout 30s]
//	        [-benchjson BENCH_load.json]
//
// Example session:
//
//	pdrgen -n 20000 -ticks 10 -o wl.jsonl
//	pdrserve -data wl.jsonl &
//	pdrload -url http://localhost:8080 -c 8 -duration 10s -warmup 2s \
//	        -benchjson BENCH_load.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"pdr/internal/loadgen"
)

func main() {
	var (
		urlFlag  = flag.String("url", "http://localhost:8080", "base URL of the pdrserve under test")
		workers  = flag.Int("c", 8, "concurrent persistent connections")
		duration = flag.Duration("duration", 10*time.Second, "measured phase length")
		warmup   = flag.Duration("warmup", 0, "warmup phase length (same traffic, discarded)")
		requests = flag.Int64("n", 0, "stop after this many measured requests (0 = run the full duration)")
		mixFlag  = flag.String("mix", "snapshot=8,interval=1,stats=1", "request-class weights, class=weight comma-separated; classes: snapshot, interval, stats (reads), tick, apply (writes)")
		method   = flag.String("method", "fr", "query method for the snapshot/interval classes: fr | pa | dh-opt | dh-pess | bf")
		l        = flag.Float64("l", 30, "neighborhood edge for query classes")
		varrho   = flag.Float64("varrho", 3, "relative density threshold for query classes")
		ticks    = flag.Int("interval-ticks", 5, "interval query length: until = now+K")
		areaX    = flag.Float64("area-x", 1000, "plane width for the apply class (must match the server's area)")
		areaY    = flag.Float64("area-y", 1000, "plane height for the apply class (must match the server's area)")
		seed     = flag.Int64("seed", 1, "RNG seed for the request sequence (worker i uses seed+i)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		benchOut = flag.String("benchjson", "", "also write the report as JSON to this path (e.g. BENCH_load.json)")
	)
	flag.Parse()

	mix, err := loadgen.ParseMix(*mixFlag)
	if err != nil {
		log.Fatal("pdrload: ", err)
	}
	fmt.Fprintf(os.Stderr, "pdrload: %d workers against %s for %v (warmup %v), mix %s\n",
		*workers, *urlFlag, *duration, *warmup, *mixFlag)
	rep, err := loadgen.Run(loadgen.Config{
		BaseURL: *urlFlag, Workers: *workers,
		Duration: *duration, Warmup: *warmup, Requests: *requests,
		Mix: mix, Method: *method, L: *l, Varrho: *varrho,
		IntervalTicks: *ticks, AreaMaxX: *areaX, AreaMaxY: *areaY,
		Seed: *seed, Timeout: *timeout,
	})
	if err != nil {
		log.Fatal("pdrload: ", err)
	}

	fmt.Printf("requests     %d (%d errors)\n", rep.Requests, rep.Errors)
	fmt.Printf("elapsed      %v\n", time.Duration(rep.ElapsedNanos))
	fmt.Printf("throughput   %.1f req/s\n", rep.ThroughputRPS)
	fmt.Printf("latency      min %v  mean %v  max %v\n",
		time.Duration(rep.MinNanos), time.Duration(rep.MeanNanos), time.Duration(rep.MaxNanos))
	fmt.Printf("percentiles  p50 %v  p90 %v  p95 %v  p99 %v\n",
		time.Duration(rep.P50Nanos), time.Duration(rep.P90Nanos),
		time.Duration(rep.P95Nanos), time.Duration(rep.P99Nanos))
	for _, name := range []string{"snapshot", "interval", "stats", "tick", "apply"} {
		cs, ok := rep.PerClass[name]
		if !ok {
			continue
		}
		fmt.Printf("  %-9s  %6d reqs  %8.1f req/s  p50 %v  p99 %v  max %v\n", name, cs.Requests,
			cs.ThroughputRPS, time.Duration(cs.P50Nanos), time.Duration(cs.P99Nanos), time.Duration(cs.MaxNanos))
	}
	if rep.SampleTraceID != "" {
		fmt.Printf("sample trace %s/debug/traces/%s\n", *urlFlag, rep.SampleTraceID)
	}
	if *benchOut != "" {
		if err := rep.WriteJSON(*benchOut); err != nil {
			log.Fatal("pdrload: ", err)
		}
		fmt.Fprintf(os.Stderr, "pdrload: wrote %s\n", *benchOut)
	}
}
