// Command pdrbench regenerates the PDR paper's evaluation: every table and
// figure of Sec. 7 plus the ablations called out in DESIGN.md.
//
// Usage:
//
//	pdrbench [-exp all] [-n 100000] [-queries 5] [-warm 20] [-seed 1] [-sizes 10000,50000,100000]
//
// Experiments: table1, fig7, fig8a, fig8b, fig8c, fig8d, fig9a, fig9b,
// fig10a, fig10b, interval, parallel, cache, shard, hotpath, baselines,
// ablations, all. Absolute numbers depend on the host; the paper's shapes
// (who wins, by what factor) are the reproduction target. "parallel"
// (worker-pool scaling), "cache" (result-cache cold/warm/sliding workloads),
// "shard" (unsharded vs space-partitioned engines under read and mixed
// read/write load), and "hotpath" (single-core kernel ns/op, B/op,
// allocs/op) are host-dependent by design and not part of "all"; with
// -benchjson DIR they record BENCH_interval.json + BENCH_snapshot.json,
// BENCH_cache.json, BENCH_shard.json, and BENCH_hotpath.json respectively
// (see docs/PERFORMANCE.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"pdr/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment to run (table1, fig7, fig8a, fig8b, fig8c, fig8d, fig9a, fig9b, fig10a, fig10b, interval, parallel, cache, shard, hotpath, baselines, ablations, all)")
		n         = flag.Int("n", 100000, "number of moving objects (CH100K analogue)")
		queries   = flag.Int("queries", 5, "queries per parameter point")
		warm      = flag.Int("warm", 20, "warm-up ticks of update traffic before measuring")
		seed      = flag.Int64("seed", 1, "workload seed")
		sizes     = flag.String("sizes", "10000,50000,100000", "dataset sizes for fig10b")
		format    = flag.String("format", "table", "output format for figure data: table or csv")
		svgDir    = flag.String("svgdir", "", "when set, fig7 also renders SVG plots into this directory")
		workers   = flag.String("workers", "1,2,4,8", "worker-pool sizes for -exp parallel")
		cacheB    = flag.Int64("cache-bytes", 64<<20, "result-cache budget for -exp cache")
		shards    = flag.String("shards", "2,4,8", "shard widths for -exp shard (the unsharded baseline always runs first)")
		benchJSON = flag.String("benchjson", "", "when set with -exp parallel, -exp cache, -exp shard, or -exp hotpath, write the BENCH_*.json baselines into this directory")
	)
	flag.Parse()

	p := experiments.DefaultParams()
	p.N = *n
	p.QueriesPerPoint = *queries
	p.WarmTicks = *warm
	p.Seed = *seed

	sizeList, err := parseSizes(*sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdrbench:", err)
		os.Exit(2)
	}

	workerList, err := parseSizes(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdrbench: -workers:", err)
		os.Exit(2)
	}

	shardList, err := parseSizes(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdrbench: -shards:", err)
		os.Exit(2)
	}

	r := experiments.NewRunner(p)
	if err := run(r, strings.ToLower(*exp), sizeList, workerList, shardList, *cacheB, *format == "csv", *svgDir, *benchJSON); err != nil {
		fmt.Fprintln(os.Stderr, "pdrbench:", err)
		os.Exit(1)
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}

func run(r *experiments.Runner, exp string, sizes, workers, shards []int, cacheBytes int64, asCSV bool, svgDir, benchJSON string) error {
	all := exp == "all"
	section := func(name, paper string) {
		fmt.Printf("\n=== %s — %s ===\n", name, paper)
	}
	start := time.Now()

	if all || exp == "table1" {
		section("Table 1", "experimental setup")
		if err := r.Table1(os.Stdout); err != nil {
			return err
		}
	}
	if all || exp == "fig7" {
		section("Fig 7", "example: dense regions found by FR and PA")
		rows, err := r.Fig7()
		if err != nil {
			return err
		}
		if err := experiments.PrintFig7(os.Stdout, rows); err != nil {
			return err
		}
		if svgDir != "" {
			paths, err := r.Fig7SVG(svgDir)
			if err != nil {
				return err
			}
			for _, p := range paths {
				fmt.Println("wrote", p)
			}
		}
	}
	if all || exp == "fig8a" || exp == "fig8b" {
		section("Fig 8(a)/8(b)", "accuracy vs varrho and l: PA vs DH baselines")
		rows, err := r.Fig8Accuracy()
		if err != nil {
			return err
		}
		if asCSV {
			if err := experiments.CSVFig8Accuracy(os.Stdout, rows); err != nil {
				return err
			}
		} else {
			if err := experiments.PrintFig8Accuracy(os.Stdout, rows); err != nil {
				return err
			}
		}
	}
	if all || exp == "fig8c" || exp == "fig8d" {
		section("Fig 8(c)/8(d)", "accuracy vs memory budget")
		rows, err := r.Fig8Memory()
		if err != nil {
			return err
		}
		if asCSV {
			if err := experiments.CSVFig8Memory(os.Stdout, rows); err != nil {
				return err
			}
		} else {
			if err := experiments.PrintFig8Memory(os.Stdout, rows); err != nil {
				return err
			}
		}
	}
	if all || exp == "fig9a" {
		section("Fig 9(a)", "query CPU: PA vs DH")
		rows, err := r.Fig9aQueryCPU()
		if err != nil {
			return err
		}
		if asCSV {
			if err := experiments.CSVFig9a(os.Stdout, rows); err != nil {
				return err
			}
		} else {
			if err := experiments.PrintFig9a(os.Stdout, rows); err != nil {
				return err
			}
		}
	}
	if all || exp == "fig9b" {
		section("Fig 9(b)", "build CPU per location update: PA vs DH")
		rows, err := r.Fig9bBuildCPU()
		if err != nil {
			return err
		}
		if err := experiments.PrintFig9b(os.Stdout, rows); err != nil {
			return err
		}
	}
	if all || exp == "fig10a" {
		section("Fig 10(a)", "total query cost: PA vs FR")
		rows, err := r.Fig10aQueryCost()
		if err != nil {
			return err
		}
		if asCSV {
			if err := experiments.CSVFig10a(os.Stdout, rows); err != nil {
				return err
			}
		} else {
			if err := experiments.PrintFig10a(os.Stdout, rows); err != nil {
				return err
			}
		}
	}
	if all || exp == "fig10b" {
		section("Fig 10(b)", "query cost vs dataset size")
		rows, err := r.Fig10bScalability(sizes)
		if err != nil {
			return err
		}
		if asCSV {
			if err := experiments.CSVFig10b(os.Stdout, rows); err != nil {
				return err
			}
		} else {
			if err := experiments.PrintFig10b(os.Stdout, rows); err != nil {
				return err
			}
		}
	}
	if all || exp == "interval" {
		section("Interval (extension)", "interval PDR cost and union growth vs window width")
		rows, err := r.ExtIntervalCost([]int{1, 2, 4, 8, 16})
		if err != nil {
			return err
		}
		if err := experiments.PrintInterval(os.Stdout, rows); err != nil {
			return err
		}
	}
	// The parallel scaling study is opt-in (not part of "all"): its numbers
	// are host-dependent by design, and "all" reproduces the paper.
	if exp == "parallel" {
		section("Parallel (extension)", "query wall time vs worker-pool size")
		bp := experiments.DefaultParallelBenchParams()
		bp.Workers = workers
		iv, err := r.ParallelInterval(bp)
		if err != nil {
			return err
		}
		if err := experiments.PrintParallel(os.Stdout, iv); err != nil {
			return err
		}
		snap, err := r.ParallelSnapshot(bp)
		if err != nil {
			return err
		}
		if err := experiments.PrintParallel(os.Stdout, snap); err != nil {
			return err
		}
		if benchJSON != "" {
			for name, b := range map[string]*experiments.ParallelBench{
				"BENCH_interval.json": iv, "BENCH_snapshot.json": snap,
			} {
				path := filepath.Join(benchJSON, name)
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				err = b.WriteJSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					return err
				}
				fmt.Println("wrote", path)
			}
		}
	}
	// Like "parallel", the cache study is opt-in: it measures this host's
	// cold/warm ratio, not a paper figure.
	if exp == "cache" {
		section("Cache (extension)", "result-cache cold vs warm vs sliding-window workloads")
		bp := experiments.DefaultCacheBenchParams()
		bp.CacheBytes = cacheBytes
		cb, err := r.CacheBench(bp)
		if err != nil {
			return err
		}
		if err := experiments.PrintCache(os.Stdout, cb); err != nil {
			return err
		}
		if benchJSON != "" {
			path := filepath.Join(benchJSON, "BENCH_cache.json")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			err = cb.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			fmt.Println("wrote", path)
		}
	}
	// The hotpath study is opt-in for the same reason: it measures this
	// host's per-core kernel cost, not a paper figure.
	if exp == "hotpath" {
		section("Hotpath (extension)", "single-core query kernels: ns/op, B/op, allocs/op")
		hb, err := r.HotpathBench(experiments.DefaultHotpathBenchParams())
		if err != nil {
			return err
		}
		if benchJSON != "" {
			path := filepath.Join(benchJSON, "BENCH_hotpath.json")
			// Carry the pre-optimization numbers forward: a re-recorded
			// baseline keeps the original "before" so the file always shows
			// the rewrite's delta.
			if f, err := os.Open(path); err == nil {
				prior, perr := experiments.ReadHotpathJSON(f)
				f.Close()
				if perr == nil {
					hb.MergeBefore(prior)
				}
			}
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			err = hb.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			fmt.Println("wrote", path)
		}
		if err := experiments.PrintHotpath(os.Stdout, hb); err != nil {
			return err
		}
	}
	// The shard study is opt-in for the same reason: it measures this
	// host's contention relief, not a paper figure.
	if exp == "shard" {
		section("Shard (extension)", "unsharded vs space-partitioned engines: snapshot, interval, mixed read/write")
		bp := experiments.DefaultShardBenchParams()
		bp.Shards = shards
		sb, err := r.ShardBench(bp)
		if err != nil {
			return err
		}
		if err := experiments.PrintShard(os.Stdout, sb); err != nil {
			return err
		}
		if benchJSON != "" {
			path := filepath.Join(benchJSON, "BENCH_shard.json")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			err = sb.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			fmt.Println("wrote", path)
		}
	}
	if all || exp == "baselines" {
		section("Baselines", "prior-art methods (Figs 1-3 arguments) quantified vs exact PDR")
		rows, err := r.BaselineComparison()
		if err != nil {
			return err
		}
		if err := experiments.PrintBaselines(os.Stdout, rows); err != nil {
			return err
		}
	}
	if all || exp == "ablations" {
		section("Ablations", "design choices called out in DESIGN.md")
		var rows []experiments.AblationRow
		bb, err := r.AblationBranchBound()
		if err != nil {
			return err
		}
		lp, err := r.AblationLocalPolynomials()
		if err != nil {
			return err
		}
		fl, err := r.AblationFilter()
		if err != nil {
			return err
		}
		ix, err := r.AblationIndex()
		if err != nil {
			return err
		}
		mg, err := r.AblationMergeCandidates()
		if err != nil {
			return err
		}
		rows = append(rows, bb...)
		rows = append(rows, lp...)
		rows = append(rows, fl...)
		rows = append(rows, ix...)
		rows = append(rows, mg...)
		if err := experiments.PrintAblation(os.Stdout, rows); err != nil {
			return err
		}
	}
	switch exp {
	case "all", "table1", "fig7", "fig8a", "fig8b", "fig8c", "fig8d",
		"fig9a", "fig9b", "fig10a", "fig10b", "interval", "parallel", "cache", "shard", "hotpath", "baselines", "ablations":
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	fmt.Printf("\ntotal runtime: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
