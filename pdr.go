// Package pdr answers Pointwise-Dense Region (PDR) queries over moving
// objects, reproducing Ni & Ravishankar, "Pointwise-Dense Region Queries in
// Spatio-temporal Databases" (ICDE 2007).
//
// A PDR query (rho, l, qt) asks for every point p of the plane whose
// l-square neighborhood will contain at least rho*l^2 moving objects at
// timestamp qt. Unlike earlier dense-region definitions, the answer is
// complete (no dense region is missed), unique (no reporting ambiguity),
// admits arbitrary rectangle shapes and sizes, and guarantees the density
// locally at every reported point.
//
// The Server ingests a stream of location updates (objects moving linearly,
// re-reporting within a maximum update interval U) and answers snapshot and
// interval PDR queries up to W ticks into the future by several methods:
//
//   - FR: the exact filtering-refinement method — a density histogram
//     classifies grid cells as certainly dense / certainly not dense /
//     candidate, and a plane sweep over TPR-tree range results resolves the
//     candidates exactly;
//   - PA: the fast approximation — per-timestamp Chebyshev polynomial
//     density surfaces maintained incrementally in closed form, queried by
//     branch-and-bound;
//   - DHOptimistic / DHPessimistic: histogram-only baselines;
//   - BruteForce: a global plane sweep (exact; used as ground truth).
//
// Quickstart:
//
//	srv, err := pdr.NewServer(pdr.DefaultConfig())
//	...
//	srv.Load(initialStates)
//	srv.Tick(now, updates)
//	res, err := srv.Snapshot(pdr.Query{Rho: rho, L: 30, At: now + 15}, pdr.FR)
//	for _, rect := range res.Region { ... }
//
// See the examples directory for complete programs, DESIGN.md for the
// architecture, and EXPERIMENTS.md for the reproduction of the paper's
// evaluation.
package pdr

import (
	"io"

	"pdr/internal/core"
	"pdr/internal/geom"
	"pdr/internal/motion"
)

// Re-exported geometry types. Rectangles are half-open: [MinX, MaxX) x
// [MinY, MaxY).
type (
	// Point is a location in the plane.
	Point = geom.Point
	// Vec is a velocity vector.
	Vec = geom.Vec
	// Rect is a half-open axis-aligned rectangle.
	Rect = geom.Rect
	// Region is a union of rectangles with exact measure operations.
	Region = geom.Region
)

// Re-exported motion types.
type (
	// Tick is a discrete timestamp.
	Tick = motion.Tick
	// ObjectID identifies a moving object.
	ObjectID = motion.ObjectID
	// State is an object's reported linear movement.
	State = motion.State
	// Update is one insert/delete record of the location-update stream.
	Update = motion.Update
)

// Re-exported engine types.
type (
	// Server is the PDR query engine.
	Server = core.Server
	// Config parameterizes a Server.
	Config = core.Config
	// Query is a snapshot PDR query (rho, l, qt).
	Query = core.Query
	// Result is a query answer with measured costs.
	Result = core.Result
	// Method selects the evaluation strategy.
	Method = core.Method
)

// Evaluation methods.
const (
	// FR is the exact filtering-refinement method.
	FR = core.FR
	// PA is the Chebyshev polynomial approximation.
	PA = core.PA
	// DHOptimistic reports accepted plus candidate histogram cells.
	DHOptimistic = core.DHOptimistic
	// DHPessimistic reports accepted histogram cells only.
	DHPessimistic = core.DHPessimistic
	// BruteForce sweeps all objects exactly (ground truth).
	BruteForce = core.BruteForce
)

// Refinement access methods (Config.Index).
const (
	// IndexTPR is the TPR-tree (default; the paper's substrate).
	IndexTPR = core.IndexTPR
	// IndexGrid is a paged uniform grid (SETI-style).
	IndexGrid = core.IndexGrid
	// IndexBx is a B^x-tree (B+-tree over Z-order keys with time phases).
	IndexBx = core.IndexBx
)

// Plan is a method recommendation from Server.Recommend.
type Plan = core.Plan

// NewServer builds a PDR server.
func NewServer(cfg Config) (*Server, error) { return core.NewServer(cfg) }

// DefaultConfig returns the paper's default experimental setup.
func DefaultConfig() Config { return core.DefaultConfig() }

// Restore rebuilds a server from a checkpoint written by Server.Save.
func Restore(r io.Reader) (*Server, error) { return core.Restore(r) }

// NewInsert builds an insertion update for a fresh movement.
func NewInsert(s State) Update { return motion.NewInsert(s) }

// NewDelete builds a deletion update for the stale movement old, applied at
// server time now.
func NewDelete(old State, now Tick) Update { return motion.NewDelete(old, now) }

// RelativeThreshold converts the paper's relative density threshold varrho
// (1..5 in the evaluation) to an absolute density for n objects over area:
// rho = n * varrho / area.
func RelativeThreshold(n int, varrho float64, area Rect) float64 {
	return float64(n) * varrho / area.Area()
}
