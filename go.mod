module pdr

go 1.22
