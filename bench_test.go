package pdr_test

// One benchmark per table and figure of the paper's evaluation (Sec. 7),
// at a scale that finishes quickly under `go test -bench=.`. The full-scale
// runs (CH100K analogue) are produced by cmd/pdrbench; see EXPERIMENTS.md
// for recorded results and paper-vs-measured shape comparisons.

import (
	"io"
	"sync"
	"testing"

	"pdr/internal/experiments"
)

var (
	benchOnce   sync.Once
	benchRunner *experiments.Runner
)

// runner returns a shared scaled-down experiment runner; environments are
// cached inside it, so each figure pays only its own measurement cost.
func runner(b *testing.B) *experiments.Runner {
	b.Helper()
	benchOnce.Do(func() {
		p := experiments.TestParams()
		benchRunner = experiments.NewRunner(p)
	})
	return benchRunner
}

func BenchmarkTable1Setup(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		if err := r.Table1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Example(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8aAccuracyFP(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig8Accuracy()
		if err != nil {
			b.Fatal(err)
		}
		var pa, dh float64
		for _, row := range rows {
			pa += row.PAfpPct
			dh += row.DHOptPct
		}
		b.ReportMetric(pa/float64(len(rows)), "PA-rfp-%")
		b.ReportMetric(dh/float64(len(rows)), "DHopt-rfp-%")
	}
}

func BenchmarkFig8bAccuracyFN(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig8Accuracy()
		if err != nil {
			b.Fatal(err)
		}
		var pa, dh float64
		for _, row := range rows {
			pa += row.PAfnPct
			dh += row.DHPessPct
		}
		b.ReportMetric(pa/float64(len(rows)), "PA-rfn-%")
		b.ReportMetric(dh/float64(len(rows)), "DHpess-rfn-%")
	}
}

func BenchmarkFig8cMemoryFP(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig8Memory()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			_ = row.RfpPct
		}
	}
}

func BenchmarkFig8dMemoryFN(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig8Memory()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			_ = row.RfnPct
		}
	}
}

func BenchmarkFig9aQueryCPU(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig9aQueryCPU()
		if err != nil {
			b.Fatal(err)
		}
		var pa, dh float64
		for _, row := range rows {
			pa += float64(row.PACPU.Microseconds())
			dh += float64(row.DHCPU.Microseconds())
		}
		b.ReportMetric(pa/float64(len(rows)), "PA-us/query")
		b.ReportMetric(dh/float64(len(rows)), "DH-us/query")
	}
}

func BenchmarkFig9bBuildCPU(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig9bBuildCPU()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			b.ReportMetric(float64(row.PerUpdate.Nanoseconds()), row.Method+"-ns/update")
		}
	}
}

func BenchmarkFig10aQueryCost(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig10aQueryCost()
		if err != nil {
			b.Fatal(err)
		}
		var pa, fr float64
		for _, row := range rows {
			pa += float64(row.PATotal.Microseconds())
			fr += float64(row.FRTotal.Microseconds())
		}
		b.ReportMetric(pa/float64(len(rows)), "PA-us/query")
		b.ReportMetric(fr/float64(len(rows)), "FR-us/query")
	}
}

func BenchmarkFig10bScalability(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.Fig10bScalability([]int{2000, 4000, 8000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBranchBound(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationBranchBound(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLocalPolynomials(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationLocalPolynomials(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFilter(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationFilter(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineComparison(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.BaselineComparison(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationIndex(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationIndex(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMergeCandidates(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.AblationMergeCandidates(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtIntervalCost(b *testing.B) {
	r := runner(b)
	for i := 0; i < b.N; i++ {
		if _, err := r.ExtIntervalCost([]int{1, 2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIntervalParallel reports the interval query's parallel speedup
// at 4 workers against the sequential path on the same workload (the curve
// cmd/pdrbench -exp parallel records at full scale into BENCH_*.json).
// The speedup metric tracks the host: ~1.0x on one core, climbing toward
// the fan-out width as cores are added.
func BenchmarkIntervalParallel(b *testing.B) {
	r := runner(b)
	bp := experiments.DefaultParallelBenchParams()
	bp.Workers = []int{1, 4}
	bp.Window = 4
	bp.Trials = 1
	for i := 0; i < b.N; i++ {
		res, err := r.ParallelInterval(bp)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.Speedup, "speedup-4w")
		b.ReportMetric(float64(last.WallNanos), "wall-ns-4w")
	}
}

// TestIntervalParallelBenchSmoke keeps the scaling study inside the plain
// `go test ./...` tier-1 gate (benchmarks only run under -bench): one tiny
// run, asserting the shape of the result rather than any timing.
func TestIntervalParallelBenchSmoke(t *testing.T) {
	r := experiments.NewRunner(experiments.TestParams())
	bp := experiments.ParallelBenchParams{Workers: []int{1, 2}, Window: 2, Trials: 1}
	res, err := r.ParallelInterval(bp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.Points[0].Workers != 1 || res.Points[1].Workers != 2 {
		t.Fatalf("unexpected points: %+v", res.Points)
	}
	if res.Points[0].Speedup != 1 {
		t.Errorf("sequential baseline speedup = %g, want 1", res.Points[0].Speedup)
	}
	if res.NumCPU <= 0 || res.GOMAXPROCS <= 0 {
		t.Errorf("host facts missing: NumCPU=%d GOMAXPROCS=%d", res.NumCPU, res.GOMAXPROCS)
	}
	for _, p := range res.Points {
		if p.WallNanos <= 0 {
			t.Errorf("workers=%d: non-positive wall time %d", p.Workers, p.WallNanos)
		}
	}
}
