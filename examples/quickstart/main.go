// Quickstart: generate a small moving-object workload, feed it to the PDR
// server, and answer one exact pointwise-dense-region query.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pdr/internal/core"
	"pdr/internal/datagen"
	"pdr/internal/experiments"
)

func main() {
	// A workload of 5,000 vehicles on a synthetic metro road network in a
	// 1,000 x 1,000-mile plane (the paper's setting).
	gen, err := datagen.New(datagen.DefaultConfig(5000))
	if err != nil {
		log.Fatal(err)
	}

	// The server maintains a density histogram, Chebyshev density surfaces
	// and a TPR-tree for the horizon [now, now+U+W].
	srv, err := core.NewServer(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Load(gen.InitialStates()); err != nil {
		log.Fatal(err)
	}

	// Stream ten ticks of location updates.
	for i := 0; i < 10; i++ {
		if err := srv.Tick(gen.Now()+1, nil); err != nil {
			log.Fatal(err)
		}
		// datagen produces updates as delete+insert pairs.
		updates := gen.Advance()
		for _, u := range updates {
			if err := srv.Apply(u); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Ask: which regions will have at least rho objects per square mile in
	// every 30-mile square neighborhood, 15 ticks from now?
	rho := experiments.RelRho(srv.NumObjects(), 3, srv.Config().Area) // paper's varrho=3
	q := core.Query{Rho: rho, L: 30, At: srv.Now() + 15}

	res, err := srv.Snapshot(q, core.FR) // exact filtering-refinement
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact dense region at t=%d: %d rectangles, %.1f sq miles\n",
		q.At, len(res.Region), res.Region.Area())
	fmt.Printf("filter step: %d accepted, %d rejected, %d candidate cells\n",
		res.Accepted, res.Rejected, res.Candidates)
	fmt.Printf("query cost: %v CPU + %d I/Os\n", res.CPU, res.IOs)

	for i, r := range res.Region {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(res.Region)-5)
			break
		}
		fmt.Printf("  dense: %v\n", r)
	}
}
