// Fleet resource scheduling — the paper's second motivating application:
// a dispatch center positions service units (tow trucks, taxis, ambulances)
// near regions where demand will concentrate.
//
// Strategy: the cheap Chebyshev approximation scans the whole plane every
// round and nominates hotspot rectangles; the exact filtering-refinement
// method then verifies only the nominated neighborhoods before units are
// committed. This is the "quick responses on large datasets" pattern the
// paper recommends PA for (Sec. 7.3).
//
// Run with: go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"sort"

	"pdr/internal/core"
	"pdr/internal/datagen"
	"pdr/internal/experiments"
	"pdr/internal/geom"
)

const (
	demandPoints = 30000
	units        = 5
)

func main() {
	gen, err := datagen.New(datagen.DefaultConfig(demandPoints))
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.L = 60
	srv, err := core.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Load(gen.InitialStates()); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ups := gen.Advance()
		if err := srv.Tick(gen.Now(), ups); err != nil {
			log.Fatal(err)
		}
	}

	rho := experiments.RelRho(srv.NumObjects(), 2, cfg.Area)
	q := core.Query{Rho: rho, L: cfg.L, At: srv.Now() + 20}

	// Step 1: cheap approximate scan of the whole plane.
	approx, err := srv.Snapshot(q, core.PA)
	if err != nil {
		log.Fatal(err)
	}
	hotspots := topHotspots(approx.Region, units*3)
	fmt.Printf("PA scan (%v): %d candidate hotspots\n", approx.CPU, len(hotspots))

	// Step 2: verify nominations exactly and rank by verified dense area.
	type verified struct {
		center geom.Point
		area   float64
	}
	var ranked []verified
	exact, err := srv.Snapshot(q, core.FR)
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range hotspots {
		va := exact.Region.IntersectionArea(geom.Region{h})
		if va > 0 {
			ranked = append(ranked, verified{center: h.Center(), area: va})
		}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].area > ranked[j].area })
	fmt.Printf("FR verification (%v CPU + %d I/Os): %d hotspots confirmed\n",
		exact.CPU, exact.IOs, len(ranked))

	// Step 3: dispatch.
	fmt.Printf("\ndispatching %d units:\n", units)
	for i := 0; i < units && i < len(ranked); i++ {
		fmt.Printf("  unit %d -> stage near %v (verified dense area %.1f sq miles)\n",
			i+1, ranked[i].center, ranked[i].area)
	}
	if len(ranked) < units {
		fmt.Printf("  %d units held in reserve (demand below threshold elsewhere)\n", units-len(ranked))
	}
}

// topHotspots returns the largest rectangles of the region, merged-ish by
// taking the biggest K by area.
func topHotspots(region geom.Region, k int) []geom.Rect {
	sorted := append(geom.Region(nil), region...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Area() > sorted[j].Area() })
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	return sorted
}
