// Traffic congestion forecasting — the paper's motivating application: a
// traffic authority watches a metropolitan road network and asks, every few
// minutes, "where will congestion be ten minutes from now?" so commuters
// can be rerouted before jams form.
//
// The example contrasts the exact filtering-refinement answer with the
// fast Chebyshev approximation at each forecast, and finishes with an
// interval query covering the whole prediction window.
//
// Run with: go run ./examples/traffic
package main

import (
	"fmt"
	"log"
	"strings"

	"pdr/internal/core"
	"pdr/internal/datagen"
	"pdr/internal/experiments"
	"pdr/internal/geom"
	"pdr/internal/motion"
)

const (
	vehicles   = 20000
	forecast   = 10 // ticks ahead ("ten minutes from now")
	monitorFor = 3  // forecasting rounds
)

func main() {
	gen, err := datagen.New(datagen.DefaultConfig(vehicles))
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.L = 30 // congestion is judged in 30-mile square neighborhoods
	srv, err := core.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Load(gen.InitialStates()); err != nil {
		log.Fatal(err)
	}
	rho := experiments.RelRho(vehicles, 3, cfg.Area)
	fmt.Printf("monitoring %d vehicles; congestion threshold %.2g vehicles/sq-mile\n\n", vehicles, rho)

	for round := 0; round < monitorFor; round++ {
		// Five minutes of live update traffic between forecasts.
		for i := 0; i < 5; i++ {
			ups := gen.Advance()
			if err := srv.Tick(gen.Now(), ups); err != nil {
				log.Fatal(err)
			}
		}
		q := core.Query{Rho: rho, L: cfg.L, At: srv.Now() + forecast}

		approx, err := srv.Snapshot(q, core.PA)
		if err != nil {
			log.Fatal(err)
		}
		exact, err := srv.Snapshot(q, core.FR)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%d, forecast for t=%d:\n", srv.Now(), q.At)
		fmt.Printf("  PA (dashboard): %4d rects, %8.1f sq miles, %v\n",
			len(approx.Region), approx.Region.Area(), approx.CPU)
		fmt.Printf("  FR (dispatch):  %4d rects, %8.1f sq miles, %v CPU + %d I/Os\n",
			len(exact.Region), exact.Region.Area(), exact.CPU, exact.IOs)
		overlap := 0.0
		if a := exact.Region.Area(); a > 0 {
			overlap = 100 * exact.Region.IntersectionArea(approx.Region) / a
		}
		fmt.Printf("  approximation covers %.1f%% of the exact congestion area\n", overlap)
		printMap(exact.Region, cfg.Area)
		fmt.Println()
	}

	// Union of congested regions across the entire prediction window:
	// "anywhere that will be congested at any time in the next W minutes".
	q := core.Query{Rho: rho, L: cfg.L, At: srv.Now()}
	iv, err := srv.Interval(q, srv.Now()+motion.Tick(cfg.W), core.FR)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interval query over [%d, %d]: %.1f sq miles congested at some point (%v total cost)\n",
		q.At, srv.Now()+motion.Tick(cfg.W), iv.Region.Area(), iv.Total())
}

// printMap renders the congested region over the metro area.
func printMap(region geom.Region, area geom.Rect) {
	const w, h = 48, 16
	for row := h - 1; row >= 0; row-- {
		var sb strings.Builder
		sb.WriteString("  ")
		for col := 0; col < w; col++ {
			p := geom.Point{
				X: area.MinX + (float64(col)+0.5)*area.Width()/float64(w),
				Y: area.MinY + (float64(row)+0.5)*area.Height()/float64(h),
			}
			if region.Contains(p) {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		fmt.Println(sb.String())
	}
}
