// Congestion alerting and post-incident audit: a standing PDR query watches
// the forecast ten ticks ahead and emits alerts when dense regions appear
// or dissolve; afterwards, the movement archive answers "where exactly was
// it congested at tick T?" for any past tick — the continuous-monitoring
// and historical-audit layers on top of the paper's query engine.
//
// Run with: go run ./examples/alerts
package main

import (
	"fmt"
	"log"

	"pdr/internal/core"
	"pdr/internal/datagen"
	"pdr/internal/experiments"
	"pdr/internal/monitor"
)

func main() {
	const vehicles = 15000
	gen, err := datagen.New(datagen.DefaultConfig(vehicles))
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.L = 60
	cfg.KeepHistory = true // enable the audit archive
	srv, err := core.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Load(gen.InitialStates()); err != nil {
		log.Fatal(err)
	}

	// Standing query: congestion forecast 10 ticks out, re-checked every 2
	// ticks with the fast approximation.
	m := monitor.New(srv)
	rho := experiments.RelRho(vehicles, 3, cfg.Area)
	subID, err := m.Register(monitor.ContinuousQuery{
		Rho: rho, L: cfg.L, Ahead: 10, Every: 2, Method: core.PA,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standing query #%d: rho=%.2g, l=%g, forecast +10 ticks\n\n", subID, rho, cfg.L)

	for tick := 0; tick < 12; tick++ {
		ups := gen.Advance()
		events, err := m.Advance(gen.Now(), ups)
		if err != nil {
			log.Fatal(err)
		}
		for _, ev := range events {
			switch {
			case ev.First:
				fmt.Printf("t=%2d  baseline: %.0f sq miles forecast congested at t=%d\n",
					ev.At, ev.Region.Area(), ev.Target)
			case ev.Changed():
				fmt.Printf("t=%2d  ALERT: +%.0f sq miles forming, -%.0f dissolving (forecast t=%d)\n",
					ev.At, ev.Added.Area(), ev.Removed.Area(), ev.Target)
			default:
				fmt.Printf("t=%2d  steady (forecast t=%d)\n", ev.At, ev.Target)
			}
		}
	}

	// Post-incident audit: reconstruct the exact congestion at a past tick
	// from the movement archive.
	auditAt := srv.Now() - 6
	past, err := srv.PastSnapshot(core.Query{Rho: rho, L: cfg.L, At: auditAt})
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := srv.History().Span()
	fmt.Printf("\naudit: at t=%d the dense region covered %.0f sq miles (%d rects)\n",
		auditAt, past.Region.Area(), len(past.Region))
	fmt.Printf("archive: %d segments spanning ticks [%d, %d)\n", srv.History().Len(), lo, hi)
}
