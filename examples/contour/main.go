// Density contours — the capability the paper highlights as unique to the
// approximation method (Sec. 6): because the density distribution is an
// explicit Chebyshev polynomial, iso-density contour lines can be computed
// directly, giving "a clear overview of the distribution of moving objects"
// without running any dense-region query.
//
// The example renders a multi-level ASCII density relief of the metro area
// plus extracted contour segments for one level.
//
// Run with: go run ./examples/contour
package main

import (
	"fmt"
	"log"
	"strings"

	"pdr/internal/core"
	"pdr/internal/datagen"
	"pdr/internal/geom"
)

func main() {
	const n = 25000
	gen, err := datagen.New(datagen.DefaultConfig(n))
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.L = 60
	cfg.PAGrid = 16 // finer surfaces for a smoother relief
	srv, err := core.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Load(gen.InitialStates()); err != nil {
		log.Fatal(err)
	}
	surf := srv.Surface()
	qt := srv.Now() + 10

	// Peak density over a coarse scan, to scale the relief.
	peak := 0.0
	area := cfg.Area
	for j := 0; j < 64; j++ {
		for i := 0; i < 64; i++ {
			p := geom.Point{
				X: area.MinX + (float64(i)+0.5)*area.Width()/64,
				Y: area.MinY + (float64(j)+0.5)*area.Height()/64,
			}
			if d := surf.Density(qt, p); d > peak {
				peak = d
			}
		}
	}
	fmt.Printf("approximated peak density at t=%d: %.4g objects/sq-mile\n\n", qt, peak)

	// ASCII relief: density quantized to levels.
	const w, h = 64, 24
	shades := []byte(" .:-=+*#%@")
	for row := h - 1; row >= 0; row-- {
		var sb strings.Builder
		for col := 0; col < w; col++ {
			p := geom.Point{
				X: area.MinX + (float64(col)+0.5)*area.Width()/float64(w),
				Y: area.MinY + (float64(row)+0.5)*area.Height()/float64(h),
			}
			d := surf.Density(qt, p)
			lvl := int(d / peak * float64(len(shades)-1))
			if lvl < 0 {
				lvl = 0
			}
			if lvl >= len(shades) {
				lvl = len(shades) - 1
			}
			sb.WriteByte(shades[lvl])
		}
		fmt.Println(sb.String())
	}

	// Explicit contour lines at half the peak.
	level := peak / 2
	segs, err := surf.Contours(qt, level, 96)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontour at level %.4g: %d segments; first few:\n", level, len(segs))
	for i, s := range segs {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(segs)-5)
			break
		}
		fmt.Printf("  %v -> %v\n", s.A, s.B)
	}
}
