#!/bin/sh
# benchdiff.sh — informational drift check for the checked-in BENCH_*.json
# baselines: reruns a small version of each recorded benchmark on this host
# and prints fresh-vs-baseline wall-time ratios per point (plus allocs/op
# for the hotpath kernels, and a -benchmem spot check of the hot kernels).
#
# Usage: scripts/benchdiff.sh      (from the module root)
#
#   BENCHDIFF_N=4000       object count for the fresh run (smaller = faster)
#   BENCHDIFF_WARM=5       warm-up ticks for the fresh run
#   BENCHDIFF_WORKERS=1,2  pool sizes for the parallel benches
#   BENCHDIFF_SKIP=1       skip entirely (prints a notice)
#
# The ratios are NOT pass/fail: baselines are host-dependent by design (the
# JSON records NumCPU/GOMAXPROCS), and the fresh run is deliberately smaller
# than the recorded one. The useful signal is relative shape — a warm cache
# point drifting from ~100x to ~1x, or a parallel speedup collapsing to
# flat, says a regression landed even though every test still passes.
set -eu

cd "$(dirname "$0")/.."

if [ "${BENCHDIFF_SKIP:-0}" = "1" ]; then
	echo "benchdiff: skipped (BENCHDIFF_SKIP=1)"
	exit 0
fi

N="${BENCHDIFF_N:-4000}"
WARM="${BENCHDIFF_WARM:-5}"
WORKERS="${BENCHDIFF_WORKERS:-1,2}"

have_baseline=0
for f in BENCH_interval.json BENCH_snapshot.json BENCH_cache.json BENCH_hotpath.json; do
	[ -f "$f" ] && have_baseline=1
done
if [ "$have_baseline" = "0" ]; then
	echo "benchdiff: no BENCH_*.json baselines checked in; nothing to compare"
	exit 0
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "benchdiff: fresh run with n=$N warm=$WARM workers=$WORKERS (baselines may use larger n; compare shapes, not absolutes)"
if [ -f BENCH_interval.json ] || [ -f BENCH_snapshot.json ]; then
	go run ./cmd/pdrbench -exp parallel -n "$N" -warm "$WARM" -workers "$WORKERS" -benchjson "$tmp" >/dev/null
fi
if [ -f BENCH_cache.json ]; then
	go run ./cmd/pdrbench -exp cache -n "$N" -warm "$WARM" -benchjson "$tmp" >/dev/null
fi
if [ -f BENCH_hotpath.json ]; then
	go run ./cmd/pdrbench -exp hotpath -n "$N" -warm "$WARM" -benchjson "$tmp" >/dev/null
fi

# points FILE KEYFIELD — emit "key wallNanos" per point from the indented
# JSON the benches write (stable machine output; no jq dependency).
points() {
	awk -v kf="\"$2\":" '
		$1 == kf { v = $2; gsub(/[",]/, "", v); k = v }
		$1 == "\"wallNanos\":" { v = $2; gsub(/,/, "", v); print k, v }
	' "$1"
}

diff_file() { # diff_file FILE KEYFIELD
	f="$1"
	kf="$2"
	[ -f "$f" ] || return 0
	if [ ! -f "$tmp/$f" ]; then
		echo "$f: fresh run produced no output; skipping"
		return 0
	fi
	points "$f" "$kf" >"$tmp/base.txt"
	points "$tmp/$f" "$kf" >"$tmp/fresh.txt"
	echo ""
	echo "$f ($kf / baseline-wall / fresh-wall / fresh:baseline)"
	while read -r key base; do
		fresh=$(awk -v k="$key" '$1 == k { print $2; exit }' "$tmp/fresh.txt")
		if [ -z "$fresh" ]; then
			echo "  $key ${base}ns (no fresh point)"
			continue
		fi
		# %.0f, not %d: wall times over ~2.1s overflow mawk's 32-bit %d.
		awk -v k="$key" -v b="$base" -v f="$fresh" 'BEGIN {
			printf "  %-16s %12.0fns %12.0fns %8.2fx\n", k, b, f, f / b
		}'
	done <"$tmp/base.txt"
}

# points_allocs FILE — emit "kernel wallNanos allocsPerOp" per hotpath
# point, stopping before the carried-forward "before" block (same kernels).
points_allocs() {
	awk '
		$1 == "\"before\":" { exit }
		$1 == "\"kernel\":" { v = $2; gsub(/[",]/, "", v); k = v }
		$1 == "\"wallNanos\":" { w = $2; gsub(/,/, "", w) }
		$1 == "\"allocsPerOp\":" { a = $2; gsub(/,/, "", a); print k, w, a }
	' "$1"
}

diff_hotpath() {
	f=BENCH_hotpath.json
	[ -f "$f" ] || return 0
	if [ ! -f "$tmp/$f" ]; then
		echo "$f: fresh run produced no output; skipping"
		return 0
	fi
	points_allocs "$f" >"$tmp/base.txt"
	points_allocs "$tmp/$f" >"$tmp/fresh.txt"
	echo ""
	echo "$f (kernel / baseline-wall / fresh-wall / ratio / baseline-allocs / fresh-allocs)"
	while read -r key base ballocs; do
		line=$(awk -v k="$key" '$1 == k { print $2, $3; exit }' "$tmp/fresh.txt")
		if [ -z "$line" ]; then
			echo "  $key ${base}ns (no fresh point)"
			continue
		fi
		fresh=${line% *}
		fallocs=${line#* }
		awk -v k="$key" -v b="$base" -v f="$fresh" -v ba="$ballocs" -v fa="$fallocs" 'BEGIN {
			flag = (fa + 0 > ba + 0) ? "   <- allocs regressed" : ""
			printf "  %-14s %12.0fns %12.0fns %7.2fx %10s %10s%s\n", k, b, f, f / b, ba, fa, flag
		}'
	done <"$tmp/base.txt"
	echo "  (wall ratios reflect the smaller fresh n; allocs/op are host- and"
	echo "   size-independent for the micro kernels — fresh > baseline is a real regression)"
}

diff_file BENCH_interval.json workers
diff_file BENCH_snapshot.json workers
diff_file BENCH_cache.json name
diff_hotpath
echo ""
echo "hot kernels on this host (go test -benchmem, 100x):"
go test -run '^$' -bench 'BenchmarkSeriesEval|BenchmarkAddBoxDelta|BenchmarkFilter$' \
	-benchtime=100x -benchmem ./internal/cheb ./internal/dh 2>/dev/null |
	grep -E '^Benchmark' | sed 's/^/  /' || true
echo ""
echo "benchdiff: informational only; regenerate baselines with:"
echo "  go run ./cmd/pdrbench -exp parallel -benchjson ."
echo "  go run ./cmd/pdrbench -exp cache -benchjson ."
echo "  go run ./cmd/pdrbench -exp hotpath -benchjson .   # keeps the recorded 'before'"
