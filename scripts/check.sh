#!/bin/sh
# check.sh — the repo's full verification gate: formatting, vet, build,
# tests, race detection on the concurrent packages, a fuzz smoke pass over
# the geometry invariants, and the project-specific pdrvet analyzers.
#
# Usage: scripts/check.sh        (from the module root)
#
# Every step must pass; the script stops at the first failure.
set -eu

cd "$(dirname "$0")/.."

step() {
	echo ""
	echo "==> $*"
}

step "gofmt (no diffs allowed)"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi
echo "ok"

step "go vet ./..."
go vet ./...

step "go build ./..."
go build ./...

step "go test ./..."
go test ./...

step "go test -race (service + monitor: the concurrent surfaces)"
go test -race ./internal/service/... ./internal/monitor/...

step "go test -race (engine read path + sweep scratch reuse + result cache)"
go test -race ./internal/core ./internal/sweep ./internal/parallel ./internal/storage ./internal/cache

step "telemetry (race on the atomic registry + instrumented service)"
go test -race ./internal/telemetry ./internal/service

step "fuzz smoke: geometry area identity (5s)"
go test -run '^$' -fuzz FuzzOutlineAreaIdentity -fuzztime 5s ./internal/geom/

step "fuzz smoke: sweep-vs-oracle refinement (5s)"
go test -run '^$' -fuzz FuzzDenseRectsMatchesOracle -fuzztime 5s ./internal/sweep/

step "pdrvet (project-specific static analysis)"
go run ./cmd/pdrvet ./...

step "benchdiff (informational: checked-in baselines vs this host)"
# Never gates the build: bench numbers are host-dependent by design.
scripts/benchdiff.sh || true

echo ""
echo "all checks passed"
