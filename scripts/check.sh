#!/bin/sh
# check.sh — the repo's full verification gate: formatting, vet, build,
# tests, race detection on the concurrent packages, a fuzz smoke pass over
# the geometry invariants, and the project-specific pdrvet analyzers.
#
# Usage: scripts/check.sh        (from the module root)
#
# FUZZ_SECS overrides the per-target fuzz smoke budget (default 5):
#   FUZZ_SECS=30 scripts/check.sh   # deeper nightly run
#   FUZZ_SECS=1 scripts/check.sh    # faster local loop
#
# Every step must pass; the script stops at the first failure.
set -eu

FUZZ_SECS=${FUZZ_SECS:-5}

cd "$(dirname "$0")/.."

step() {
	echo ""
	echo "==> $*"
}

step "gofmt (no diffs allowed)"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi
echo "ok"

step "go vet ./..."
go vet ./...

step "go build ./..."
go build ./...

step "go test ./..."
go test ./...

step "go test -race (service + monitor: the concurrent surfaces)"
go test -race ./internal/service/... ./internal/monitor/...

step "go test -race (engine read path + kernel scratch pools + result cache)"
go test -race ./internal/core ./internal/cheb ./internal/dh ./internal/sweep ./internal/parallel ./internal/storage ./internal/cache

step "go test -race (sharded engine: shard-local writes vs scatter-gather reads)"
go test -race ./internal/shard

step "shard equivalence (sharded answers bit-identical to the unsharded engine)"
go test -run 'TestEngineMatchesServer|TestShardedServiceFlow' -count=1 ./internal/shard ./internal/service

step "telemetry (race on the atomic registry + trace store + instrumented service)"
go test -race ./internal/telemetry ./internal/tracestore ./internal/service

step "pdrload smoke (in-process server, non-zero throughput, valid JSON)"
go test -run TestLoadHarnessSmoke -count=1 ./internal/loadgen

step "fuzz smoke: geometry area identity (${FUZZ_SECS}s)"
go test -run '^$' -fuzz FuzzOutlineAreaIdentity -fuzztime "${FUZZ_SECS}s" ./internal/geom/

step "fuzz smoke: sweep-vs-oracle refinement (${FUZZ_SECS}s)"
go test -run '^$' -fuzz FuzzDenseRectsMatchesOracle -fuzztime "${FUZZ_SECS}s" ./internal/sweep/

step "fuzz smoke: zcurve InWindow/BigMin agreement (${FUZZ_SECS}s)"
go test -run '^$' -fuzz FuzzBigMinInWindow -fuzztime "${FUZZ_SECS}s" ./internal/zcurve/

step "hotpath benchmark smoke (-benchtime=1x: kernels compile, run, report allocs)"
go test -run '^$' -bench 'BenchmarkSeriesEval|BenchmarkAddBoxDelta|BenchmarkFilter$|BenchmarkDenseRects200|BenchmarkSnapshot' \
	-benchtime=1x -benchmem ./internal/cheb ./internal/dh ./internal/sweep ./internal/core >/dev/null

step "pdrvet (project-specific static analysis)"
go run ./cmd/pdrvet ./...

step "pdrvet -fix -dry (no machine-applicable fix left pending)"
go run ./cmd/pdrvet -fix -dry ./...

step "analyzer inventory matches docs/LINT.md"
listed=$(go run ./cmd/pdrvet -list | awk '{print $1}' | sort)
documented=$(grep -E '^### ' docs/LINT.md | sed -E 's/^### ([a-z]+) .*/\1/' | sort)
if [ "$listed" != "$documented" ]; then
	echo "analyzer inventory drift between 'pdrvet -list' and docs/LINT.md:" >&2
	echo "pdrvet -list: $(echo $listed)" >&2
	echo "docs/LINT.md: $(echo $documented)" >&2
	exit 1
fi
echo "ok"

step "race reproducer (locked's RLock-write finding is a real race)"
# Inverted gate: the env-gated reproducer in internal/lint/raceproof_test.go
# commits the exact pattern the locked analyzer flags; -race must fail it.
if PDR_RACE_REPRO=1 go test -race -run TestRaceReproRLockWrite -count=1 ./internal/lint/ >/dev/null 2>&1; then
	echo "expected the RLock-write reproducer to fail under -race" >&2
	exit 1
fi
echo "ok (race detector confirms the analyzer's claim)"

step "benchdiff (informational: checked-in baselines vs this host)"
# Never gates the build: bench numbers are host-dependent by design.
scripts/benchdiff.sh || true

echo ""
echo "all checks passed"
